//! The virtual machine: P processors with clocks plus the shared memory
//! system, the stack pool, the locality caches and the scheduler lock.

use crate::cache::CacheModel;
use crate::cost::CostModel;
use crate::heap::{HeapModel, StackPool};
use crate::perturb::Prng;
use crate::record::{MachineRecording, MemEventKind, Recorder};
use crate::stats::{Bucket, HostPhaseStats, MemStats, ProcStats, RunStats};
use crate::time::VirtTime;
use crate::vlock::VirtualLock;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Index of a virtual processor.
pub type ProcId = usize;

#[derive(Debug, Clone, Default)]
struct Proc {
    clock: VirtTime,
    stats: ProcStats,
}

/// A `p`-processor virtual SMP.
///
/// The threads runtime drives this object: it advances processor clocks via
/// [`Machine::charge`], performs modelled memory operations, and reads the
/// final statistics with [`Machine::finish`]. The `Machine` itself has no
/// scheduling policy — that lives in the runtime.
#[derive(Debug)]
pub struct Machine {
    procs: Vec<Proc>,
    cost: CostModel,
    heap: HeapModel,
    stacks: StackPool,
    caches: Vec<CacheModel>,
    sched_lock: VirtualLock,
    /// Serializes kernel-side memory operations (fresh page commits, fresh
    /// stack reservations) across processors, modelling the VM-system
    /// bottleneck behind the paper's Figure 6: processors of an
    /// allocation-heavy schedule queue up in the kernel.
    mem_lock: VirtualLock,
    // thread accounting
    live_threads: u64,
    live_threads_hwm: u64,
    threads_created: u64,
    dummy_threads: u64,
    prune_tick: u64,
    /// Frees that underflowed the live byte count (double frees).
    free_underflows: u64,
    /// Armed space bound in bytes (see [`Machine::arm_space_bound`]).
    space_bound: Option<u64>,
    /// Footprint growths observed above the armed bound.
    bound_violations: u64,
    /// Flight recording, when enabled (see [`Machine::enable_recording`]).
    recorder: Option<Box<Recorder>>,
    /// Schedule perturbation, when enabled (see
    /// [`Machine::enable_perturbation`]).
    perturb: Option<Prng>,
    /// Host-side phase profiler, when enabled (see
    /// [`Machine::enable_host_profile`]). Mirrors the recorder's gating:
    /// every hook is one `Option` discriminant test when off.
    host_prof: Option<Box<HostPhaseStats>>,
    /// Per-processor deadline heaps for timed waits: `(fire time, token)`
    /// min-heaps. The machine only stores and orders deadlines; arming,
    /// firing and staleness policy all live in the driving runtime (tokens
    /// are opaque here). Deadline bookkeeping is free in virtual time — it
    /// never charges a clock and never records an event.
    deadlines: Vec<BinaryHeap<Reverse<(VirtTime, u64)>>>,
}

/// Maximum extra nanoseconds the perturbation mode injects at one
/// sync-operation boundary. Small relative to every modelled cost, so the
/// jitter reorders virtually-concurrent operations without distorting the
/// run's aggregate timing.
const SYNC_JITTER_NS: u64 = 96;

/// Maximum nanoseconds a perturbed scheduler-lock acquirer loses before
/// contending (modelling another processor reaching the lock word first).
const LOCK_DEFER_NS: u64 = 48;

impl Machine {
    /// Creates a machine with `p` processors, the given cost model, and a
    /// stack pool caching stacks of `default_stack` bytes.
    pub fn new(p: usize, cost: CostModel, default_stack: u64) -> Self {
        assert!(p >= 1, "need at least one processor");
        Machine {
            procs: vec![Proc::default(); p],
            caches: (0..p)
                .map(|_| CacheModel::new(cost.cache.capacity_bytes))
                .collect(),
            cost,
            heap: HeapModel::new(),
            stacks: StackPool::new(default_stack),
            sched_lock: VirtualLock::new(),
            mem_lock: VirtualLock::new(),
            live_threads: 0,
            live_threads_hwm: 0,
            threads_created: 0,
            dummy_threads: 0,
            prune_tick: 0,
            free_underflows: 0,
            space_bound: None,
            bound_violations: 0,
            recorder: None,
            perturb: None,
            host_prof: None,
            deadlines: (0..p).map(|_| BinaryHeap::new()).collect(),
        }
    }

    /// Arms a timed-wait deadline on processor `p`: `token` (an opaque
    /// runtime identifier, typically a thread id) becomes due once `p`'s
    /// clock reaches `at`. Costs nothing in virtual time.
    pub fn arm_deadline(&mut self, p: ProcId, at: VirtTime, token: u64) {
        let t0 = self.host_prof.is_some().then(std::time::Instant::now);
        self.deadlines[p].push(Reverse((at, token)));
        if let Some(t0) = t0 {
            self.host_prof.as_deref_mut().expect("checked").heap_push.record(t0);
        }
    }

    /// The earliest armed deadline on processor `p`, if any. Entries are
    /// returned in `(fire time, token)` order; stale entries (whose wait was
    /// satisfied before the deadline) are the runtime's job to recognize and
    /// [`pop_deadline`](Machine::pop_deadline) away.
    pub fn peek_deadline(&self, p: ProcId) -> Option<(VirtTime, u64)> {
        self.deadlines[p].peek().map(|Reverse(e)| *e)
    }

    /// Removes and returns the earliest armed deadline on processor `p`.
    pub fn pop_deadline(&mut self, p: ProcId) -> Option<(VirtTime, u64)> {
        let t0 = self.host_prof.is_some().then(std::time::Instant::now);
        let out = self.deadlines[p].pop().map(|Reverse(e)| e);
        if let Some(t0) = t0 {
            self.host_prof.as_deref_mut().expect("checked").heap_pop.record(t0);
        }
        out
    }

    /// Whether any processor has an armed deadline outstanding.
    pub fn has_deadlines(&self) -> bool {
        self.deadlines.iter().any(|h| !h.is_empty())
    }

    /// Arms the space-bound enforcer: every footprint growth is checked
    /// against `limit_bytes` (typically `S1 + c·p·D`, with S1 measured by a
    /// serial run and D by the DAG crosscheck). Growths above the bound are
    /// counted into [`MemStats::bound_violations`]; the *crossing* growth
    /// additionally records a [`MemEventKind::BoundViolation`] event when
    /// recording is on (the footprint never shrinks, so one event marks the
    /// whole excursion). Enforcement never alters the accounting itself —
    /// footprint metrics stay bit-identical to an unarmed run.
    pub fn arm_space_bound(&mut self, limit_bytes: u64) {
        self.space_bound = Some(limit_bytes);
    }

    /// The armed space bound, if any.
    pub fn space_bound(&self) -> Option<u64> {
        self.space_bound
    }

    /// Checks the current footprint against the armed bound after a growth
    /// on processor `p`. Called from every path that can grow the footprint.
    fn check_space_bound(&mut self, p: ProcId) {
        let Some(bound) = self.space_bound else { return };
        let footprint = self.heap.footprint();
        if footprint <= bound {
            return;
        }
        let crossing = self.bound_violations == 0;
        self.bound_violations += 1;
        if crossing {
            if let Some(r) = self.recorder.as_deref_mut() {
                r.event(
                    self.procs[p].clock,
                    p,
                    MemEventKind::BoundViolation { footprint, bound },
                );
            }
        }
    }

    /// Enables the seeded schedule-perturbation mode: sync-operation
    /// boundaries gain a small deterministic clock jitter and scheduler-lock
    /// acquisitions may lose a modelled race, both driven by a [`Prng`]
    /// seeded from `seed`. The perturbed timeline is still fully
    /// deterministic: the same `(cost model, seed)` pair replays the exact
    /// same schedule.
    pub fn enable_perturbation(&mut self, seed: u64) {
        self.perturb = Some(Prng::new(seed ^ 0xA5A5_0000_5A5A_FFFF));
    }

    /// Whether perturbation mode is on.
    pub fn perturbed(&self) -> bool {
        self.perturb.is_some()
    }

    /// Starts flight recording: memory-system events (allocs/frees of at
    /// least `alloc_event_threshold` bytes, stack reserve/release) and
    /// counter samples at every footprint / live-thread / lock-wait change.
    /// The counter tracks are exact: their maxima equal the corresponding
    /// [`MemStats`] high-water marks.
    pub fn enable_recording(&mut self, alloc_event_threshold: u64) {
        self.recorder = Some(Box::new(Recorder::new(
            alloc_event_threshold,
            self.heap.footprint(),
            self.live_threads,
        )));
    }

    /// Stops recording and returns everything recorded so far, or `None`
    /// when recording was never enabled.
    pub fn take_recording(&mut self) -> Option<MachineRecording> {
        self.recorder.take().map(|r| r.rec)
    }

    /// Arms the host-side phase profiler: monotonic counters and host
    /// (real-time) nanosecond timers around the machine's engine phases —
    /// deadline-heap push/pop, clock charge points, and scheduler-lock
    /// holds. Off by default; when off every hook costs one `Option`
    /// discriminant test, keeping the dispatch hot path unchanged.
    pub fn enable_host_profile(&mut self) {
        self.host_prof = Some(Box::new(HostPhaseStats {
            enabled: true,
            ..HostPhaseStats::default()
        }));
    }

    /// Whether the host-phase profiler is armed.
    pub fn host_profiled(&self) -> bool {
        self.host_prof.is_some()
    }

    /// Number of processors.
    pub fn processors(&self) -> usize {
        self.procs.len()
    }

    /// The cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Current clock of processor `p`.
    pub fn clock(&self, p: ProcId) -> VirtTime {
        self.procs[p].clock
    }

    /// Advances processor `p`'s clock by `dur`, accounted to `bucket`.
    pub fn charge(&mut self, p: ProcId, bucket: Bucket, dur: VirtTime) {
        let t0 = self.host_prof.is_some().then(std::time::Instant::now);
        self.procs[p].clock += dur;
        self.procs[p].stats.breakdown.add(bucket, dur);
        if let Some(t0) = t0 {
            self.host_prof.as_deref_mut().expect("checked").charge.record(t0);
        }
    }

    /// Advances processor `p`'s clock *to* `t` (idling if `t` is in the
    /// future). No-op if `t` is in the past.
    pub fn idle_until(&mut self, p: ProcId, t: VirtTime) {
        let wait = t.since(self.procs[p].clock);
        if wait > VirtTime::ZERO {
            self.charge(p, Bucket::Idle, wait);
        }
    }

    /// Records a dispatch (a thread starting a scheduling quantum) on `p`.
    pub fn count_dispatch(&mut self, p: ProcId) {
        self.procs[p].stats.dispatches += 1;
    }

    /// Acquires the global scheduler lock at `p`'s current clock, holding it
    /// for one critical section; charges contention wait and CS time.
    pub fn sched_lock(&mut self, p: ProcId) {
        let t0 = self.host_prof.is_some().then(std::time::Instant::now);
        let now = self.procs[p].clock;
        let hold = self.cost.sched_cs;
        let (wait, release) = match self.perturb.as_mut() {
            Some(prng) => {
                let defer = VirtTime::from_ns(prng.below(LOCK_DEFER_NS + 1));
                self.sched_lock.acquire_deferred(now, hold, defer)
            }
            None => self.sched_lock.acquire(now, hold),
        };
        self.charge(p, Bucket::SchedWait, wait);
        self.charge(p, Bucket::SchedCs, release.since(now + wait));
        if wait > VirtTime::ZERO {
            if let Some(r) = self.recorder.as_deref_mut() {
                r.sample_lock_wait(release, wait);
            }
        }
        self.maybe_prune();
        if let Some(t0) = t0 {
            self.host_prof.as_deref_mut().expect("checked").sched_lock.record(t0);
        }
    }

    /// Bounds the virtual locks' interval memory: drop holds wholly before
    /// the slowest processor's clock (no future acquirer can start earlier).
    fn maybe_prune(&mut self) {
        self.prune_tick += 1;
        if self.prune_tick.is_multiple_of(4096) {
            let watermark = self
                .procs
                .iter()
                .map(|q| q.clock)
                .min()
                .unwrap_or(VirtTime::ZERO);
            self.sched_lock.prune(watermark);
            self.mem_lock.prune(watermark);
        }
    }

    /// Charges a kernel-serialized memory operation of duration `hold` on
    /// `p`: acquires the VM lock (contention wait + hold both accounted to
    /// the memory system).
    fn kernel_mem_op(&mut self, p: ProcId, hold: VirtTime) {
        let now = self.procs[p].clock;
        let (wait, release) = self.mem_lock.acquire(now, hold);
        self.charge(p, Bucket::MemSys, wait + release.since(now + wait));
        self.maybe_prune();
    }

    /// Models an application heap allocation of `bytes` on processor `p`:
    /// updates footprint tracking and charges malloc + first-touch costs.
    /// Fresh pages go through the kernel VM lock and therefore serialize
    /// across processors.
    pub fn alloc(&mut self, p: ProcId, bytes: u64) {
        let fresh = self.heap.alloc(bytes);
        self.charge(p, Bucket::MemSys, self.cost.malloc_base);
        if fresh > 0 {
            let hold = self.cost.fresh_pages(fresh);
            self.kernel_mem_op(p, hold);
        }
        if self.recorder.is_some() {
            let (at, fp) = (self.procs[p].clock, self.heap.footprint());
            let r = self.recorder.as_deref_mut().expect("checked");
            r.event(at, p, MemEventKind::Alloc { bytes });
            r.sample_footprint(at, fp);
        }
        self.check_space_bound(p);
    }

    /// Models freeing `bytes` on processor `p`. Returns the underflow in
    /// bytes — `0` for a valid free, positive when the program freed more
    /// than was live (a double free; also counted and, when recording, made
    /// into a [`MemEventKind::FreeUnderflow`] event).
    pub fn free(&mut self, p: ProcId, bytes: u64) -> u64 {
        let underflow = self.heap.free(bytes);
        let cost = self.cost.free_base;
        self.charge(p, Bucket::MemSys, cost);
        if underflow > 0 {
            self.free_underflows += 1;
        }
        if self.recorder.is_some() {
            let at = self.procs[p].clock;
            let r = self.recorder.as_deref_mut().expect("checked");
            r.event(at, p, MemEventKind::Free { bytes });
            if underflow > 0 {
                r.event(at, p, MemEventKind::FreeUnderflow { bytes: underflow });
            }
        }
        underflow
    }

    /// Models thread creation bookkeeping on `p` (thread-create overhead and
    /// stack acquisition) for a thread with `reserved` stack bytes. Returns
    /// the committed stack bytes attributed to the new thread.
    pub fn thread_create(&mut self, p: ProcId, reserved: u64) -> u64 {
        self.threads_created += 1;
        self.live_threads += 1;
        self.live_threads_hwm = self.live_threads_hwm.max(self.live_threads);
        self.charge(p, Bucket::ThreadOp, self.cost.thread_create);
        let committed = match self.stacks.acquire(reserved) {
            Some(committed) => {
                // Cached stack: its committed bytes are already live.
                self.charge(p, Bucket::MemSys, self.cost.stack_cached);
                committed
            }
            None => {
                let committed = self.cost.stack_commit(reserved, false);
                let fresh = self.heap.alloc(committed);
                let hold = self.cost.stack_fresh(reserved) + self.cost.fresh_pages(fresh);
                self.kernel_mem_op(p, hold);
                committed
            }
        };
        if self.recorder.is_some() {
            let (at, fp, live) = (self.procs[p].clock, self.heap.footprint(), self.live_threads);
            let r = self.recorder.as_deref_mut().expect("checked");
            r.event(at, p, MemEventKind::StackReserve { bytes: reserved });
            r.sample_live(at, live);
            r.sample_footprint(at, fp);
        }
        self.check_space_bound(p);
        committed
    }

    /// Models the lazy stack commit when a thread first runs: grows its
    /// committed stack from `committed` to the touch estimate. Returns the
    /// new committed size.
    pub fn thread_first_run(&mut self, p: ProcId, reserved: u64, committed: u64) -> u64 {
        let target = self.cost.stack_commit(reserved, true);
        if target > committed {
            let fresh = self.heap.alloc(target - committed);
            if fresh > 0 {
                let hold = self.cost.fresh_pages(fresh);
                self.kernel_mem_op(p, hold);
            }
            if self.recorder.is_some() {
                let (at, fp) = (self.procs[p].clock, self.heap.footprint());
                let r = self.recorder.as_deref_mut().expect("checked");
                r.sample_footprint(at, fp);
            }
            self.check_space_bound(p);
            target
        } else {
            committed
        }
    }

    /// Models thread exit on `p`: the stack is either cached (bytes stay
    /// live) or freed.
    pub fn thread_exit(&mut self, p: ProcId, reserved: u64, committed: u64) {
        debug_assert!(self.live_threads > 0);
        self.live_threads -= 1;
        if !self.stacks.release(reserved, committed) {
            // Stack bytes are runtime-managed; an underflow here would be a
            // runtime bug, not an application double free.
            let underflow = self.heap.free(committed);
            debug_assert_eq!(underflow, 0, "stack free underflowed live bytes");
            let cost = self.cost.free_base;
            self.charge(p, Bucket::MemSys, cost);
        }
        if self.recorder.is_some() {
            let (at, live) = (self.procs[p].clock, self.live_threads);
            let r = self.recorder.as_deref_mut().expect("checked");
            r.event(at, p, MemEventKind::StackRelease { bytes: reserved });
            r.sample_live(at, live);
        }
    }

    /// Counts a dummy (no-op) thread inserted by the allocation hook.
    pub fn count_dummy(&mut self) {
        self.dummy_threads += 1;
    }

    /// Number of currently live threads.
    pub fn live_threads(&self) -> u64 {
        self.live_threads
    }

    /// Models a locality touch of `bytes` in `region` by processor `p`.
    pub fn touch(&mut self, p: ProcId, region: u64, bytes: u64) {
        let missed = self.caches[p].touch(region, bytes);
        if missed > 0 {
            let cost = self.cost.cache_miss(missed);
            self.charge(p, Bucket::CacheMiss, cost);
        }
    }

    /// Charges a thread-operation cost (context switch, join, ...).
    pub fn thread_op(&mut self, p: ProcId, dur: VirtTime) {
        self.charge(p, Bucket::ThreadOp, dur);
    }

    /// Charges a synchronization-primitive cost. Under perturbation mode
    /// every sync-operation boundary also gains a small deterministic
    /// jitter, which reorders virtually-concurrent sync operations across
    /// processors (the engine dispatches by minimum clock).
    pub fn sync_op(&mut self, p: ProcId, dur: VirtTime) {
        let jitter = match self.perturb.as_mut() {
            Some(prng) => VirtTime::from_ns(prng.below(SYNC_JITTER_NS + 1)),
            None => VirtTime::ZERO,
        };
        self.charge(p, Bucket::Sync, dur + jitter);
    }

    /// Charges application compute of `cycles` cycles on `p`.
    pub fn compute(&mut self, p: ProcId, cycles: u64) {
        let dur = self.cost.cycles(cycles);
        self.charge(p, Bucket::Compute, dur);
    }

    /// Current committed footprint (bytes).
    pub fn footprint(&self) -> u64 {
        self.heap.footprint()
    }

    /// Current live bytes.
    pub fn live_bytes(&self) -> u64 {
        self.heap.live()
    }

    /// Finalizes the run: aligns all processor clocks to the makespan and
    /// returns the collected statistics.
    pub fn finish(mut self) -> RunStats {
        let makespan = self
            .procs
            .iter()
            .map(|p| p.clock)
            .max()
            .unwrap_or(VirtTime::ZERO);
        for i in 0..self.procs.len() {
            self.idle_until(i, makespan);
        }
        let (allocs, frees, fresh_bytes) = self.heap.counters();
        let (stack_cache_hits, stack_fresh) = self.stacks.counters();
        let (mut cache_hits, mut cache_misses) = (0, 0);
        for c in &self.caches {
            let (h, m, _) = c.counters();
            cache_hits += h;
            cache_misses += m;
        }
        let (lock_acq, lock_wait, _) = self.sched_lock.counters();
        RunStats {
            makespan,
            processors: self.procs.len(),
            procs: self.procs.into_iter().map(|p| p.stats).collect(),
            mem: MemStats {
                footprint_hwm: self.heap.footprint(),
                live_hwm: self.heap.live_hwm(),
                live_end: self.heap.live(),
                live_threads_hwm: self.live_threads_hwm,
                threads_created: self.threads_created,
                dummy_threads: self.dummy_threads,
                allocs,
                frees,
                fresh_bytes,
                stack_cache_hits,
                stack_fresh,
                cache_hits,
                cache_misses,
                free_underflows: self.free_underflows,
                bound_violations: self.bound_violations,
                // Host fiber-stack pool counters live in the threads
                // runtime; it folds them in after finish().
                host_stack_hits: 0,
                host_stack_misses: 0,
                host_stack_cached_hwm: 0,
            },
            sched_lock_acquisitions: lock_acq,
            sched_lock_wait: lock_wait,
            host_phase: self.host_prof.map(|b| *b).unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(p: usize) -> Machine {
        Machine::new(p, CostModel::ultrasparc_167(), 1024 * 1024)
    }

    #[test]
    fn charge_and_makespan() {
        let mut m = machine(2);
        m.compute(0, 1000); // 6 µs
        m.compute(1, 500); // 3 µs
        let stats = m.finish();
        assert_eq!(stats.makespan, VirtTime::from_us(6));
        assert_eq!(stats.procs[1].breakdown.idle, VirtTime::from_us(3));
    }

    #[test]
    fn alloc_free_reuse_costs() {
        let mut m = machine(1);
        m.alloc(0, 16 * 1024); // 2 fresh pages
        let after_first = m.clock(0);
        m.free(0, 16 * 1024);
        let before_second = m.clock(0);
        m.alloc(0, 16 * 1024); // fully reused: only malloc_base
        let second_cost = m.clock(0).since(before_second);
        assert_eq!(second_cost, VirtTime::from_ns(3_000));
        assert!(after_first > VirtTime::from_ns(3_000 + 2 * 25_000 - 1));
        assert_eq!(m.footprint(), 16 * 1024);
    }

    #[test]
    fn thread_lifecycle_accounting() {
        let mut m = machine(1);
        let c = m.thread_create(0, 1024 * 1024);
        assert_eq!(c, 8 * 1024, "lazy commit: one page at create");
        assert_eq!(m.live_threads(), 1);
        let c = m.thread_first_run(0, 1024 * 1024, c);
        assert_eq!(c, 16 * 1024);
        m.thread_exit(0, 1024 * 1024, c);
        assert_eq!(m.live_threads(), 0);
        // Default-size stack was cached: bytes stay live.
        assert_eq!(m.live_bytes(), 16 * 1024);
        // Second thread reuses the cached stack: no fresh bytes.
        let fp = m.footprint();
        let c2 = m.thread_create(0, 1024 * 1024);
        assert_eq!(c2, 16 * 1024);
        assert_eq!(m.footprint(), fp);
        let stats = m.finish();
        assert_eq!(stats.mem.threads_created, 2);
        assert_eq!(stats.mem.live_threads_hwm, 1);
        assert_eq!(stats.mem.stack_cache_hits, 1);
    }

    #[test]
    fn sched_lock_serializes_processors() {
        let mut m = machine(2);
        m.sched_lock(0); // holds [0, 1500)
        m.sched_lock(1); // arrives at 0, waits 1500
        assert_eq!(m.clock(1), VirtTime::from_ns(3_000));
        let stats = m.finish();
        assert_eq!(stats.sched_lock_acquisitions, 2);
        assert_eq!(stats.sched_lock_wait, VirtTime::from_ns(1_500));
    }

    #[test]
    fn recording_counter_maxima_equal_hwms() {
        let mut m = machine(2);
        m.enable_recording(1024);
        let c0 = m.thread_create(0, 1024 * 1024);
        let c1 = m.thread_create(1, 1024 * 1024);
        m.alloc(0, 64 * 1024);
        m.free(0, 64 * 1024);
        m.alloc(1, 16); // below threshold: no event, footprint unchanged (reuse)
        m.thread_exit(0, 1024 * 1024, c0);
        m.thread_exit(1, 1024 * 1024, c1);
        let rec = m.take_recording().expect("recording enabled");
        let stats = m.finish();
        let fp_max = rec.footprint.iter().map(|&(_, v)| v).max().unwrap();
        let live_max = rec.live_threads.iter().map(|&(_, v)| v).max().unwrap();
        assert_eq!(fp_max, stats.mem.footprint_hwm);
        assert_eq!(live_max, stats.mem.live_threads_hwm);
        // 2 reserves + 2 releases + the one above-threshold alloc/free pair.
        assert_eq!(rec.events.len(), 6);
        // Footprint samples are non-decreasing (an arena never shrinks).
        assert!(rec.footprint.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn recording_disabled_is_absent() {
        let mut m = machine(1);
        m.alloc(0, 4096);
        assert!(m.take_recording().is_none());
    }

    #[test]
    fn perturbation_jitters_sync_ops_deterministically() {
        let run = |seed: Option<u64>| {
            let mut m = machine(2);
            if let Some(s) = seed {
                m.enable_perturbation(s);
            }
            for _ in 0..32 {
                m.sync_op(0, VirtTime::from_ns(500));
                m.sched_lock(1);
            }
            (m.clock(0), m.clock(1))
        };
        let base = run(None);
        let a = run(Some(7));
        let b = run(Some(7));
        let c = run(Some(8));
        assert_eq!(a, b, "same seed must replay bit-exactly");
        assert_ne!(a, base, "perturbation must change the timeline");
        assert_ne!(a, c, "different seeds must explore different timelines");
        // Jitter is bounded: 32 sync ops can add at most 32 * 96ns.
        assert!(a.0.since(base.0) <= VirtTime::from_ns(32 * 96));
    }

    #[test]
    fn free_underflow_counted_and_recorded() {
        let mut m = machine(1);
        m.enable_recording(u64::MAX); // suppress ordinary alloc/free events
        m.alloc(0, 4096);
        assert_eq!(m.free(0, 4096), 0);
        assert_eq!(m.free(0, 4096), 4096, "double free must surface");
        let rec = m.take_recording().unwrap();
        let stats = m.finish();
        assert_eq!(stats.mem.free_underflows, 1);
        // The underflow event bypasses the threshold.
        assert!(rec
            .events
            .iter()
            .any(|e| matches!(e.kind, MemEventKind::FreeUnderflow { bytes: 4096 })));
    }

    #[test]
    fn space_bound_counts_growths_above_limit() {
        let mut m = machine(1);
        m.enable_recording(u64::MAX);
        m.arm_space_bound(10_000);
        m.alloc(0, 8_000); // within bound
        m.alloc(0, 8_000); // crosses: 16_000 > 10_000
        m.alloc(0, 8_000); // still above
        let _ = m.free(0, 24_000);
        m.alloc(0, 1_000); // reuse, footprint unchanged — still above
        let rec = m.take_recording().unwrap();
        let stats = m.finish();
        assert_eq!(stats.mem.bound_violations, 3);
        assert_eq!(stats.mem.footprint_hwm, 24_000, "accounting unaltered");
        let crossings: Vec<_> = rec
            .events
            .iter()
            .filter(|e| matches!(e.kind, MemEventKind::BoundViolation { .. }))
            .collect();
        assert_eq!(crossings.len(), 1, "only the crossing growth records an event");
        assert!(matches!(
            crossings[0].kind,
            MemEventKind::BoundViolation { footprint: 16_000, bound: 10_000 }
        ));
    }

    #[test]
    fn unarmed_bound_never_fires() {
        let mut m = machine(1);
        m.alloc(0, 1 << 30);
        assert_eq!(m.space_bound(), None);
        let stats = m.finish();
        assert_eq!(stats.mem.bound_violations, 0);
    }

    #[test]
    fn stack_growth_checks_the_bound_too() {
        let mut m = machine(1);
        m.arm_space_bound(4 * 1024);
        let c = m.thread_create(0, 1024 * 1024); // commits 8 KiB at create
        let _ = m.thread_first_run(0, 1024 * 1024, c);
        let stats = m.finish();
        assert!(stats.mem.bound_violations >= 2, "create + first-run growths");
    }

    #[test]
    fn deadline_heap_orders_and_costs_nothing() {
        let mut m = machine(2);
        let before = (m.clock(0), m.clock(1));
        m.arm_deadline(0, VirtTime::from_us(30), 3);
        m.arm_deadline(0, VirtTime::from_us(10), 1);
        m.arm_deadline(0, VirtTime::from_us(20), 2);
        m.arm_deadline(1, VirtTime::from_us(5), 9);
        assert!(m.has_deadlines());
        assert_eq!(m.peek_deadline(0), Some((VirtTime::from_us(10), 1)));
        assert_eq!(m.pop_deadline(0), Some((VirtTime::from_us(10), 1)));
        assert_eq!(m.pop_deadline(0), Some((VirtTime::from_us(20), 2)));
        assert_eq!(m.pop_deadline(0), Some((VirtTime::from_us(30), 3)));
        assert_eq!(m.pop_deadline(0), None);
        assert_eq!(m.pop_deadline(1), Some((VirtTime::from_us(5), 9)));
        assert!(!m.has_deadlines());
        // Deadline bookkeeping never moves a clock.
        assert_eq!((m.clock(0), m.clock(1)), before);
        let stats = m.finish();
        assert_eq!(stats.makespan, VirtTime::ZERO);
    }

    #[test]
    fn deadline_ties_order_by_token() {
        let mut m = machine(1);
        m.arm_deadline(0, VirtTime::from_ns(100), 7);
        m.arm_deadline(0, VirtTime::from_ns(100), 2);
        assert_eq!(m.pop_deadline(0), Some((VirtTime::from_ns(100), 2)));
        assert_eq!(m.pop_deadline(0), Some((VirtTime::from_ns(100), 7)));
    }

    #[test]
    fn host_profile_counts_phases_and_is_zero_when_off() {
        let mut m = machine(2);
        m.enable_host_profile();
        assert!(m.host_profiled());
        m.arm_deadline(0, VirtTime::from_us(10), 1);
        m.arm_deadline(0, VirtTime::from_us(20), 2);
        let _ = m.pop_deadline(0);
        m.compute(0, 1000);
        m.sched_lock(0);
        let stats = m.finish();
        let hp = stats.host_phase;
        assert!(hp.enabled);
        assert_eq!(hp.heap_push.count, 2);
        assert_eq!(hp.heap_pop.count, 1);
        assert_eq!(hp.sched_lock.count, 1);
        // compute + the sched-lock wait/CS charges + finish's idle alignment.
        assert!(hp.charge.count >= 3, "charges seen: {}", hp.charge.count);
        assert!(hp.total_ns() > 0, "timers must accumulate real time");

        let mut off = machine(1);
        off.compute(0, 1000);
        off.sched_lock(0);
        let stats = off.finish();
        assert!(!stats.host_phase.enabled);
        assert_eq!(stats.host_phase.total_ns(), 0);
        assert_eq!(stats.host_phase.charge.count, 0);
    }

    #[test]
    fn touch_locality() {
        let mut m = machine(2);
        m.touch(0, 7, 1000);
        let t_after_miss = m.clock(0);
        m.touch(0, 7, 1000); // hit: free
        assert_eq!(m.clock(0), t_after_miss);
        // Other processor has its own cache: misses again.
        m.touch(1, 7, 1000);
        assert_eq!(m.clock(1), t_after_miss);
    }
}
