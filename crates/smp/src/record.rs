//! Optional machine-level flight recording: memory-system events and
//! exactly-sampled counter tracks.
//!
//! The [`crate::Machine`] is where the committed footprint and the live
//! thread count actually change, so that is the only place they can be
//! sampled *exactly* — a recorder hooked anywhere higher would race the
//! high-water marks. When recording is enabled (see
//! [`crate::Machine::enable_recording`]), every footprint growth and every
//! live-thread change appends a `(virtual time, value)` sample, which makes
//! the maxima of the recorded tracks equal the reported high-water marks
//! bit-for-bit. The threads runtime drains the recording at the end of a
//! run and merges it into its own trace (`ptdf::Trace`).
//!
//! Recording is off by default and costs one `Option` discriminant test per
//! hook when disabled. The host-phase profiler
//! ([`crate::Machine::enable_host_profile`], results in
//! [`crate::HostPhaseStats`]) uses the same gating idiom for its host-time
//! counters around the machine's engine phases.

use crate::time::VirtTime;
use crate::ProcId;

/// A memory-system event recorded by the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum MemEventKind {
    /// Application heap allocation at or above the event threshold.
    Alloc {
        /// Allocation size in bytes.
        bytes: u64,
    },
    /// Application heap free at or above the event threshold.
    Free {
        /// Freed size in bytes.
        bytes: u64,
    },
    /// A thread stack reservation (at thread creation).
    StackReserve {
        /// Reserved stack bytes.
        bytes: u64,
    },
    /// A thread stack release (at thread exit; the stack may stay cached).
    StackRelease {
        /// Reserved stack bytes released.
        bytes: u64,
    },
    /// A free that exceeded the live byte count — a double free (or free of
    /// unallocated memory) in the modelled program. Always recorded,
    /// regardless of the alloc/free threshold.
    FreeUnderflow {
        /// Bytes freed beyond what was live.
        bytes: u64,
    },
    /// The committed footprint crossed the armed space bound
    /// (see `Machine::arm_space_bound`). Recorded once, at the crossing.
    BoundViolation {
        /// Footprint at the moment of the violation.
        footprint: u64,
        /// The armed bound in bytes.
        bound: u64,
    },
}

/// One machine-level event on the virtual timeline.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct MemEvent {
    /// Virtual time of the event (the acting processor's clock).
    pub at: VirtTime,
    /// Processor that performed the operation.
    pub proc: ProcId,
    /// What happened.
    pub kind: MemEventKind,
}

/// Everything the machine recorded over a run.
///
/// Counter tracks are `(time, value)` samples taken at every change, so
/// `max(track)` equals the corresponding high-water mark in
/// [`crate::MemStats`] exactly.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct MachineRecording {
    /// Memory-system events (allocs/frees above the threshold, stack
    /// reserve/release).
    pub events: Vec<MemEvent>,
    /// Committed footprint in bytes, sampled at every growth.
    pub footprint: Vec<(VirtTime, u64)>,
    /// Live (created, not yet exited) threads, sampled at every change.
    pub live_threads: Vec<(VirtTime, u64)>,
    /// Cumulative scheduler-lock contention wait in nanoseconds, sampled at
    /// every contended acquisition.
    pub sched_lock_wait: Vec<(VirtTime, u64)>,
}

/// Internal recorder state held by the machine while recording.
#[derive(Debug)]
pub(crate) struct Recorder {
    /// Allocs/frees smaller than this produce no event (counter samples are
    /// unaffected).
    pub threshold: u64,
    /// Running total of scheduler-lock wait, mirrored into the track.
    pub lock_wait_total: VirtTime,
    /// Last footprint sample value, to skip no-growth samples.
    pub last_footprint: u64,
    /// The recording being built.
    pub rec: MachineRecording,
}

impl Recorder {
    pub fn new(threshold: u64, footprint_now: u64, live_now: u64) -> Self {
        let mut rec = MachineRecording::default();
        rec.footprint.push((VirtTime::ZERO, footprint_now));
        rec.live_threads.push((VirtTime::ZERO, live_now));
        Recorder {
            threshold,
            lock_wait_total: VirtTime::ZERO,
            last_footprint: footprint_now,
            rec,
        }
    }

    /// Appends a footprint sample if the value changed.
    pub fn sample_footprint(&mut self, at: VirtTime, footprint: u64) {
        if footprint != self.last_footprint {
            self.last_footprint = footprint;
            self.rec.footprint.push((at, footprint));
        }
    }

    /// Appends a live-thread sample (every call is a change).
    pub fn sample_live(&mut self, at: VirtTime, live: u64) {
        self.rec.live_threads.push((at, live));
    }

    /// Accumulates contended scheduler-lock wait.
    pub fn sample_lock_wait(&mut self, at: VirtTime, wait: VirtTime) {
        self.lock_wait_total += wait;
        self.rec.sched_lock_wait.push((at, self.lock_wait_total.as_ns()));
    }

    /// Records a memory event, applying the alloc/free threshold.
    pub fn event(&mut self, at: VirtTime, proc: ProcId, kind: MemEventKind) {
        let keep = match kind {
            MemEventKind::Alloc { bytes } | MemEventKind::Free { bytes } => {
                bytes >= self.threshold
            }
            MemEventKind::StackReserve { .. }
            | MemEventKind::StackRelease { .. }
            | MemEventKind::FreeUnderflow { .. }
            | MemEventKind::BoundViolation { .. } => true,
        };
        if keep {
            self.rec.events.push(MemEvent { at, proc, kind });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_samples_dedup_unchanged_values() {
        let mut r = Recorder::new(0, 0, 0);
        r.sample_footprint(VirtTime::from_ns(1), 100);
        r.sample_footprint(VirtTime::from_ns(2), 100); // no growth: skipped
        r.sample_footprint(VirtTime::from_ns(3), 150);
        assert_eq!(
            r.rec.footprint,
            vec![
                (VirtTime::ZERO, 0),
                (VirtTime::from_ns(1), 100),
                (VirtTime::from_ns(3), 150)
            ]
        );
    }

    #[test]
    fn threshold_filters_heap_events_but_not_stacks() {
        let mut r = Recorder::new(1024, 0, 0);
        r.event(VirtTime::ZERO, 0, MemEventKind::Alloc { bytes: 100 });
        r.event(VirtTime::ZERO, 0, MemEventKind::Alloc { bytes: 4096 });
        r.event(VirtTime::ZERO, 0, MemEventKind::StackReserve { bytes: 8 });
        assert_eq!(r.rec.events.len(), 2);
    }

    #[test]
    fn lock_wait_track_is_cumulative() {
        let mut r = Recorder::new(0, 0, 0);
        r.sample_lock_wait(VirtTime::from_ns(10), VirtTime::from_ns(5));
        r.sample_lock_wait(VirtTime::from_ns(20), VirtTime::from_ns(7));
        assert_eq!(
            r.rec.sched_lock_wait,
            vec![(VirtTime::from_ns(10), 5), (VirtTime::from_ns(20), 12)]
        );
    }
}
