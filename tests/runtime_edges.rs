//! Edge-case integration tests of the runtime: deadlock detection, barrier
//! reuse, condvar broadcast, rwlock contention patterns, TSD lifecycle,
//! trace determinism, serial-mode parity, and report serialization.

use ptdf::{
    run, run_serial, scope, spawn, Barrier, Condvar, Config, CostModel, Mutex, RwLock, SchedKind,
    Semaphore, TlsKey,
};

#[test]
fn deadlock_is_detected_and_reported() {
    let result = std::panic::catch_unwind(|| {
        run(Config::new(2, SchedKind::Df), || {
            // Two threads acquire two mutexes in opposite order, holding
            // across modelled work so the interleaving interlocks.
            let a = Mutex::new(());
            let b = Mutex::new(());
            // Holds must exceed the simulation's 200 µs interleaving
            // quantum so both threads demonstrably interlock (see
            // DESIGN.md on time-slicing granularity).
            let (a2, b2) = (a.clone(), b.clone());
            let t1 = spawn(move || {
                let _ga = a2.lock();
                ptdf::work(300_000);
                let _gb = b2.lock();
            });
            let (a3, b3) = (a.clone(), b.clone());
            let t2 = spawn(move || {
                let _gb = b3.lock();
                ptdf::work(300_000);
                let _ga = a3.lock();
            });
            t1.join();
            t2.join();
        });
    });
    let err = result.expect_err("deadlock must not complete");
    let dl = err
        .downcast_ref::<ptdf::DeadlockError>()
        .expect("panic payload should be the structured DeadlockError");
    let mut cycle = dl.info.cycle.clone();
    cycle.sort_unstable();
    assert_eq!(cycle, vec![1, 2], "cycle should name exactly t1 and t2");
    assert!(
        dl.to_string().contains("deadlock"),
        "display should identify the deadlock, got: {dl}"
    );
}

#[test]
fn barrier_is_reusable_across_many_phases() {
    let (counts, _) = run(Config::new(3, SchedKind::Df), || {
        let n = 3;
        let phases = 25;
        let barrier = Barrier::new(n);
        let tally = Mutex::new(vec![0u32; phases]);
        scope(|s| {
            for _ in 0..n {
                let barrier = barrier.clone();
                let tally = tally.clone();
                s.spawn(move || {
                    for ph in 0..phases {
                        tally.lock()[ph] += 1;
                        barrier.wait();
                        // After the barrier, every participant must have
                        // contributed to this phase.
                        assert_eq!(tally.lock()[ph], n as u32, "phase {ph}");
                        barrier.wait();
                    }
                });
            }
        });
        let v = tally.lock().clone();
        v
    });
    assert!(counts.iter().all(|&c| c == 3));
}

#[test]
fn condvar_notify_all_wakes_every_waiter() {
    let (woken, _) = run(Config::new(4, SchedKind::Fifo), || {
        let gate = Mutex::new(false);
        let cv = Condvar::new();
        let count = Mutex::new(0u32);
        scope(|s| {
            for _ in 0..10 {
                let (gate, cv, count) = (gate.clone(), cv.clone(), count.clone());
                s.spawn(move || {
                    let mut g = gate.lock();
                    while !*g {
                        g = cv.wait(g);
                    }
                    drop(g);
                    *count.lock() += 1;
                });
            }
            let (gate, cv) = (gate.clone(), cv.clone());
            s.spawn(move || {
                ptdf::work(100_000); // let all waiters park
                *gate.lock() = true;
                cv.notify_all();
            });
        });
        let v = *count.lock();
        v
    });
    assert_eq!(woken, 10);
}

#[test]
fn rwlock_many_readers_one_writer_interleaving() {
    for kind in [SchedKind::Df, SchedKind::DfDeques, SchedKind::Ws] {
        let (log_ok, _) = run(Config::new(4, kind), move || {
            let l = RwLock::new(0i64);
            scope(|s| {
                // Writers increment 50 times total.
                for _ in 0..5 {
                    let l = l.clone();
                    s.spawn(move || {
                        for _ in 0..10 {
                            let mut g = l.write();
                            let v = *g;
                            ptdf::work(2_000);
                            *g = v + 1;
                        }
                    });
                }
                // Readers only ever observe monotone values.
                for _ in 0..5 {
                    let l = l.clone();
                    s.spawn(move || {
                        let mut last = -1i64;
                        for _ in 0..20 {
                            let g = l.read();
                            assert!(*g >= last, "value went backwards");
                            last = *g;
                            ptdf::work(500);
                        }
                    });
                }
            });
            let v = *l.read();
            v == 50
        });
        assert!(log_ok, "{kind:?}: writer increments lost");
    }
}

#[test]
fn tls_survives_blocking_and_migration() {
    let (ok, _) = run(Config::new(4, SchedKind::Ws), || {
        let key = TlsKey::new(|| 0u64);
        let sem = Semaphore::new(0);
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let key = key.clone();
            let sem = sem.clone();
            handles.push(spawn(move || {
                key.set(i * 100);
                sem.acquire(); // block: thread may resume on another proc
                key.get() == i * 100
            }));
        }
        for _ in 0..8 {
            sem.release();
        }
        handles.into_iter().all(|h| h.join())
    });
    assert!(ok, "TSD must follow the thread across blocking/migration");
}

#[test]
fn trace_is_deterministic_across_runs() {
    let go = || {
        let cfg = Config::new(3, SchedKind::Df).with_trace();
        let (_, report) = run(cfg, || {
            scope(|s| {
                for i in 0..12 {
                    s.spawn(move || ptdf::work(1_000 * (i + 1)));
                }
            })
        });
        report.trace.unwrap().to_chrome_json()
    };
    assert_eq!(go(), go(), "identical configs must give identical traces");
}

#[test]
fn serial_and_parallel_compute_identical_results() {
    // One recursive workload, three execution modes, same answer.
    fn pascal(row: u32, col: u32) -> u64 {
        if col == 0 || col == row {
            ptdf::work(100);
            return 1;
        }
        let l = spawn(move || pascal(row - 1, col - 1));
        let r = pascal(row - 1, col);
        l.join() + r
    }
    let plain = pascal(14, 7); // no runtime at all
    let (serial, _) = run_serial(CostModel::ultrasparc_167(), || pascal(14, 7));
    let (par, _) = run(Config::new(4, SchedKind::Df), || pascal(14, 7));
    assert_eq!(plain, 3432);
    assert_eq!(serial, 3432);
    assert_eq!(par, 3432);
}

#[test]
fn report_fields_are_consistent() {
    let (_, report) = run(Config::new(2, SchedKind::Df).with_trace(), || {
        spawn(|| ptdf::work(1000)).join();
        ptdf::rt_alloc(4096);
        ptdf::rt_free(4096);
    });
    assert_eq!(report.scheduler, "df");
    assert!(report.stats.makespan.as_ns() > 0);
    assert!(report.trace.is_some());
}

#[test]
fn zero_and_huge_work_charges_are_safe() {
    let (_, report) = run(Config::new(1, SchedKind::Fifo), || {
        ptdf::work(0);
        ptdf::touch(1, 0);
        ptdf::work(10_000_000_000); // 10G cycles = 60 virtual seconds
    });
    assert!(report.makespan().as_secs_f64() > 59.0);
}

#[test]
fn try_lock_semantics_under_contention() {
    let (saw_contention, _) = run(Config::new(2, SchedKind::Df), || {
        let m = Mutex::new(());
        let m2 = m.clone();
        let holder = spawn(move || {
            let _g = m2.lock();
            ptdf::work(2_000_000); // hold for 12 virtual ms
        });
        // Work long enough to cross the simulation's interleaving quantum
        // so the holder's lock is visible before we probe.
        ptdf::work(300_000);
        let contended = m.try_lock().is_none();
        holder.join();
        let free = m.try_lock().is_some();
        contended && free
    });
    assert!(saw_contention);
}
