//! Fork/join churn at the acceptance scale: 100k threads through the full
//! engine, asserting the fiber-stack pool serves ≥90% of spawns from cache
//! (on the real-stack backend), that the pool's cached bytes respect the
//! configured cap, and that footprint accounting is bit-identical to a
//! pool-disabled run — recycling host stacks must be invisible to the
//! space model.

use ptdf::{Config, SchedKind};

const THREADS: u64 = 100_000;
const WAVE: u64 = 64;

fn storm(cfg: Config) -> ptdf::Report {
    let (_, report) = ptdf::run(cfg, || {
        let mut done = 0u64;
        while done < THREADS {
            let wave = WAVE.min(THREADS - done);
            let handles: Vec<_> = (0..wave).map(|_| ptdf::spawn(|| ())).collect();
            for h in handles {
                h.join();
            }
            done += wave;
        }
    });
    report
}

#[test]
fn hundred_k_storm_hits_the_pool() {
    let report = storm(Config::new(4, SchedKind::Df));
    assert_eq!(
        report.stats.mem.host_stack_hits + report.stats.mem.host_stack_misses,
        THREADS + 1, // every spawn plus the root fiber
    );
    if ptdf_fiber::HAS_REAL_STACKS {
        let rate = report.stack_pool_hit_rate();
        assert!(rate >= 0.9, "pool hit rate {rate} < 0.9");
        // A 64-wide wave of 64 KiB fiber stacks never outgrows the cap, so
        // nothing is evicted and the high-water mark stays under it.
        let cap = Config::new(4, SchedKind::Df).stack_pool_cap as u64;
        assert!(report.stats.mem.host_stack_cached_hwm <= cap);
        assert!(report.stats.mem.host_stack_cached_hwm > 0);
    } else {
        assert_eq!(report.stack_pool_hit_rate(), 0.0);
    }
}

#[test]
fn pooling_is_invisible_to_the_space_model() {
    let pooled = storm(Config::new(2, SchedKind::Df));
    let unpooled = storm(Config::new(2, SchedKind::Df).with_stack_pool_cap(0));
    assert_eq!(
        pooled.stats.mem.footprint_hwm, unpooled.stats.mem.footprint_hwm,
        "host stack recycling changed the modeled footprint"
    );
    assert_eq!(pooled.stats.mem.live_hwm, unpooled.stats.mem.live_hwm);
    assert_eq!(
        pooled.stats.mem.live_threads_hwm,
        unpooled.stats.mem.live_threads_hwm
    );
    assert_eq!(pooled.makespan(), unpooled.makespan());
    if ptdf_fiber::HAS_REAL_STACKS {
        assert_eq!(unpooled.stats.mem.host_stack_hits, 0);
        assert_eq!(unpooled.stats.mem.host_stack_cached_hwm, 0);
    }
}
