//! Cross-validation of the abstract DAG simulator (`ptdf-dag`) against the
//! real runtime (`ptdf`): the same fork-join program, lowered both ways,
//! must show the same scheduler space behaviour.

use std::collections::HashMap;
use std::rc::Rc;

use ptdf::{Config, CostModel, SchedKind};
use ptdf_dag::{
    gen_program, max_path_threads, serial_space, simulate, validate, Action, GenParams,
    PolicyKind, Program,
};

/// Executes `Program` thread `t` on the real runtime (forks become spawns).
fn exec_thread(p: Rc<Program>, t: usize) {
    let mut handles: HashMap<usize, ptdf::JoinHandle<()>> = HashMap::new();
    for a in p.threads[t].actions.clone() {
        match a {
            Action::Work(u) => ptdf::work(u * 10_000),
            Action::Alloc(b) => ptdf::rt_alloc(b),
            Action::Free(b) => ptdf::rt_free(b),
            Action::Fork(c) => {
                let p2 = p.clone();
                handles.insert(c, ptdf::spawn(move || exec_thread(p2, c)));
            }
            Action::Join(c) => {
                handles
                    .remove(&c)
                    .expect("join of un-forked child")
                    .join();
            }
        }
    }
}

/// Runs a program on the real runtime; returns its report.
fn run_program(prog: &Program, kind: SchedKind, procs: usize) -> ptdf::Report {
    let prog = Rc::new(prog.clone());
    // Huge quota so DF dummy threads don't perturb the thread counts.
    let cfg = Config::new(procs, kind).with_quota(u64::MAX / 4);
    let (_, report) = ptdf::run(cfg, move || exec_thread(prog, 0));
    report
}

fn programs() -> Vec<Program> {
    (0..6)
        .map(|seed| {
            gen_program(GenParams {
                seed,
                max_threads: 60,
                max_depth: 6,
                max_work: 10,
                max_alloc: 500,
                fork_percent: 70,
            })
        })
        .filter(|p| p.len() > 5)
        .collect()
}

#[test]
fn serial_df_live_threads_match_abstract_child_first() {
    for (i, prog) in programs().iter().enumerate() {
        validate(prog).unwrap();
        let sim = simulate(prog, PolicyKind::ChildFirst, 1);
        let real = run_program(prog, SchedKind::Df, 1);
        assert_eq!(
            real.max_live_threads(),
            sim.max_live_threads as u64,
            "program {i}: abstract and real DF disagree"
        );
    }
}

#[test]
fn serial_fifo_live_threads_match_abstract_fifo() {
    for (i, prog) in programs().iter().enumerate() {
        let sim = simulate(prog, PolicyKind::FifoQueue, 1);
        let real = run_program(prog, SchedKind::Fifo, 1);
        assert_eq!(
            real.max_live_threads(),
            sim.max_live_threads as u64,
            "program {i}: abstract and real FIFO disagree"
        );
    }
}

#[test]
fn df_live_threads_bounded_by_p_times_depth() {
    for (i, prog) in programs().iter().enumerate() {
        let d = max_path_threads(prog) as u64;
        for procs in [2u64, 4, 8] {
            let real = run_program(prog, SchedKind::Df, procs as usize);
            // The S1 + O(p·D) discipline keeps at most ~one depth-first
            // path per processor alive (+1 slack for in-flight handoffs).
            assert!(
                real.max_live_threads() <= procs * d + procs,
                "program {i}, p={procs}: {} live > p*d = {}",
                real.max_live_threads(),
                procs * d
            );
        }
    }
}

#[test]
fn fifo_space_never_below_df_space() {
    for prog in &programs() {
        if serial_space(prog) == 0 {
            continue;
        }
        let fifo = run_program(prog, SchedKind::Fifo, 4);
        let df = run_program(prog, SchedKind::Df, 4);
        assert!(
            fifo.footprint() >= df.footprint(),
            "FIFO must not beat DF on footprint: {} vs {}",
            fifo.footprint(),
            df.footprint()
        );
        assert!(fifo.max_live_threads() >= df.max_live_threads());
    }
}

#[test]
fn all_schedulers_complete_all_programs() {
    for prog in &programs() {
        let total = prog.len();
        for kind in [
            SchedKind::Fifo,
            SchedKind::Lifo,
            SchedKind::Df,
            SchedKind::DfLocal,
            SchedKind::DfDeques,
            SchedKind::Ws,
        ] {
            for procs in [1, 3, 8] {
                let report = run_program(prog, kind, procs);
                // Program thread 0 runs as the runtime's root thread, so the
                // totals match exactly.
                assert_eq!(report.total_threads, total, "{kind:?} p={procs}");
            }
        }
    }
}

/// With a zero-overhead cost model, the runtime's virtual makespan must
/// obey the greedy-scheduling (Brent) bounds computed by the abstract
/// analyses: max(W/p, D) ≤ T_p ≤ W/p + D.
#[test]
fn makespan_obeys_brent_bounds_under_zero_overhead() {
    use ptdf_dag::{critical_path, total_work};
    for (i, prog) in programs().iter().enumerate() {
        // exec_thread charges u * 10_000 cycles per Work(u); the
        // zero-overhead model maps 1 cycle → 1 ns.
        let w = total_work(prog) * 10_000;
        let d = critical_path(prog) * 10_000;
        if w == 0 {
            continue;
        }
        for procs in [1u64, 2, 4, 8] {
            for kind in [SchedKind::Df, SchedKind::Ws, SchedKind::Fifo] {
                let prog_rc = Rc::new(prog.clone());
                let cfg = Config::new(procs as usize, kind)
                    .with_cost(CostModel::zero_overhead())
                    .with_quota(u64::MAX / 4);
                let (_, report) = ptdf::run(cfg, move || exec_thread(prog_rc, 0));
                let t = report.makespan().as_ns();
                let lower = (w / procs).max(d);
                let upper = w / procs + d;
                assert!(
                    t >= lower,
                    "program {i} {kind:?} p={procs}: T={t} < max(W/p, D)={lower}"
                );
                assert!(
                    t <= upper,
                    "program {i} {kind:?} p={procs}: T={t} > W/p + D={upper} (non-greedy)"
                );
                if procs == 1 {
                    assert_eq!(t, w, "serial makespan must equal total work");
                }
            }
        }
    }
}

/// Closed-form check of the critical-path analyzer: on a closed fork/join
/// program with zero scheduling overhead and more processors than the
/// program ever has runnable threads, the realized critical path is pure
/// compute and must equal the abstract DAG's critical path bit-exactly in
/// virtual time — with the blame buckets still tiling the makespan.
#[test]
fn critpath_compute_matches_abstract_critical_path_under_zero_overhead() {
    use ptdf_dag::critical_path;
    for (i, prog) in programs().iter().enumerate() {
        // exec_thread charges u * 10_000 cycles per Work(u); the
        // zero-overhead model maps 1 cycle → 1 ns.
        let d = critical_path(prog) * 10_000;
        if d == 0 {
            continue;
        }
        for kind in [
            SchedKind::Fifo,
            SchedKind::Lifo,
            SchedKind::Df,
            SchedKind::DfDeques,
            SchedKind::Ws,
        ] {
            // 64 processors ≥ any width gen_program(max_threads: 60) can
            // reach: nothing ever waits in a queue.
            let prog_rc = Rc::new(prog.clone());
            let cfg = Config::new(64, kind)
                .with_cost(CostModel::zero_overhead())
                .with_quota(u64::MAX / 4)
                .with_trace();
            let (_, report) = ptdf::run(cfg, move || exec_thread(prog_rc, 0));
            let cp = report.critpath().expect("traced run");
            assert_eq!(
                cp.blame.sum(),
                cp.makespan,
                "program {i} {kind:?}: buckets must tile the makespan"
            );
            assert_eq!(
                cp.makespan,
                report.makespan(),
                "program {i} {kind:?}: analyzer and report disagree on makespan"
            );
            assert_eq!(
                cp.blame.compute.as_ns(),
                d,
                "program {i} {kind:?}: path compute {} != abstract critical path {d} (blame {:?})",
                cp.blame.compute.as_ns(),
                cp.blame
            );
            // Nothing waits: every non-compute bucket is zero.
            assert_eq!(cp.blame.ready_wait.as_ns(), 0, "program {i} {kind:?}");
            assert_eq!(cp.blame.lock_wait.as_ns(), 0, "program {i} {kind:?}");
            assert_eq!(cp.blame.join_wait.as_ns(), 0, "program {i} {kind:?}");
            assert_eq!(cp.blame.preempt.as_ns(), 0, "program {i} {kind:?}");
            assert_eq!(cp.blame.residual.as_ns(), 0, "program {i} {kind:?}");
        }
    }
}

#[test]
fn ws_space_bounded_by_p_times_serial_paths() {
    // Busy-leaves style bound: work stealing (and the parallelized
    // DFDeques scheduler) keeps at most ~p depth-first paths alive.
    for prog in &programs() {
        let d = max_path_threads(prog) as u64;
        for procs in [2u64, 4] {
            for kind in [SchedKind::Ws, SchedKind::DfDeques] {
                let real = run_program(prog, kind, procs as usize);
                assert!(
                    real.max_live_threads() <= procs * d + procs,
                    "{kind:?} p={procs}: {} live, d={d}",
                    real.max_live_threads()
                );
            }
        }
    }
}
