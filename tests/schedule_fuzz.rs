//! Schedule-perturbation fuzz matrix (ISSUE 3 tentpole acceptance).
//!
//! Runs a sync-heavy workload (mutex counter + semaphore throttle +
//! condvar gate + barrier rounds) under seeded schedule perturbation
//! ([`ptdf::Config::with_perturbation`]) across five policies, and feeds
//! every recorded trace to the happens-before checker
//! ([`ptdf::check_trace`]). Three guarantees are pinned down:
//!
//! 1. **Invariance** — perturbation may reorder the schedule but never the
//!    results: every `(policy, seed)` cell computes the same totals.
//! 2. **Cleanliness** — the checker reports zero violations on the real
//!    primitives under every explored schedule.
//! 3. **Replayability** — a `(policy, seed)` pair replays bit-exactly:
//!    running the same cell twice yields *equal* traces, so a failure
//!    printed as `--sched <policy> --perturb-seed <seed>` is reproducible.
//!
//! Two memory-subsystem extensions ride on the same matrix: ledger-armed
//! cells (tracked alloc/free per round must balance under every schedule)
//! and failure-injection cells (denied spawns/allocations must degrade
//! gracefully and be counted exactly).
//!
//! `REPRO_QUICK=1` shrinks the seed budget (64 → 8 per policy) for smoke
//! runs in CI.

use ptdf::{check_trace, Barrier, Condvar, Config, Mutex, SchedKind, Semaphore};

const POLICIES: [SchedKind; 5] = [
    SchedKind::Fifo,
    SchedKind::Lifo,
    SchedKind::Df,
    SchedKind::DfDeques,
    SchedKind::Ws,
];

fn seed_budget() -> u64 {
    if std::env::var_os("REPRO_QUICK").is_some() {
        8
    } else {
        64
    }
}

/// The fuzz workload: `nthreads` threads, `rounds` rounds. Each round
/// funnels through a half-capacity semaphore, bumps a shared counter,
/// rendezvouses at a condvar gate (last arrival notifies), then crosses a
/// barrier — touching every blocking primitive every round.
fn sync_storm(nthreads: usize, rounds: usize) -> (u64, usize) {
    let counter = Mutex::new(0u64);
    let gate = Mutex::new(0usize);
    let cv = Condvar::new();
    let barrier = Barrier::new(nthreads);
    let sem = Semaphore::new((nthreads / 2) as i64);
    ptdf::scope(|s| {
        for _ in 0..nthreads {
            let counter = counter.clone();
            let gate = gate.clone();
            let cv = cv.clone();
            let barrier = barrier.clone();
            let sem = sem.clone();
            s.spawn(move || {
                for r in 1..=rounds {
                    sem.acquire();
                    *counter.lock() += 1;
                    ptdf::work(200);
                    sem.release();
                    let mut g = gate.lock();
                    *g += 1;
                    if *g == nthreads * r {
                        cv.notify_all();
                    } else {
                        g = cv.wait_while(g, |a| *a < nthreads * r);
                    }
                    drop(g);
                    barrier.wait();
                }
            });
        }
    });
    let total = *counter.lock();
    let arrivals = *gate.lock();
    (total, arrivals)
}

#[test]
fn perturbation_matrix_is_clean_and_invariant() {
    let seeds = seed_budget();
    let (nthreads, rounds) = (4, 6);
    for kind in POLICIES {
        for seed in 0..seeds {
            let cfg = Config::new(4, kind).with_trace().with_perturbation(seed);
            let ((total, arrivals), report) = ptdf::run(cfg, move || sync_storm(nthreads, rounds));
            assert_eq!(
                total,
                (nthreads * rounds) as u64,
                "{kind:?} seed {seed}: counter corrupted"
            );
            assert_eq!(arrivals, nthreads * rounds, "{kind:?} seed {seed}: gate");
            let trace = report.trace.expect("tracing was enabled");
            let check = check_trace(&trace);
            assert!(
                check.is_clean(),
                "{kind:?} seed {seed}: {:#?}\nreplay with: {}",
                check.violations,
                check.replay.as_deref().unwrap_or("(no recipe)")
            );
        }
    }
}

#[test]
fn ledger_armed_matrix_stays_clean_and_balanced() {
    // The memory-subsystem cells of the matrix: the same sync storm with
    // the allocation ledger armed, each thread routing a tracked buffer
    // through rt_alloc/rt_free every round. Perturbation must never
    // unbalance the ledger or dirty the trace.
    let seeds = seed_budget() / 4; // heavier cells, smaller budget
    for kind in [SchedKind::Df, SchedKind::DfDeques, SchedKind::Fifo] {
        for seed in 0..seeds.max(2) {
            let cfg = Config::new(4, kind)
                .with_ledger()
                .with_trace()
                .with_perturbation(seed);
            let ((total, _), report) = ptdf::run(cfg, || {
                let (nthreads, rounds) = (4, 4);
                let counter = Mutex::new(0u64);
                let barrier = Barrier::new(nthreads);
                ptdf::scope(|s| {
                    for _ in 0..nthreads {
                        let counter = counter.clone();
                        let barrier = barrier.clone();
                        s.spawn(move || {
                            for _ in 0..rounds {
                                ptdf::rt_alloc(4096);
                                *counter.lock() += 1;
                                ptdf::work(200);
                                ptdf::rt_free(4096);
                                barrier.wait();
                            }
                        });
                    }
                });
                let total = *counter.lock();
                (total, 0usize)
            });
            assert_eq!(total, 16, "{kind:?} seed {seed}: counter corrupted");
            let leaks = report.leaks.as_ref().expect("ledger armed");
            assert!(
                leaks.is_clean(),
                "{kind:?} seed {seed}: ledger unbalanced: {leaks:?}"
            );
            assert_eq!(leaks.total_allocated, 16 * 4096);
            let check = check_trace(&report.trace.expect("tracing was enabled"));
            assert!(check.is_clean(), "{kind:?} seed {seed}: {:#?}", check.violations);
        }
    }
}

#[test]
fn failure_injection_matrix_degrades_gracefully() {
    // Failure-injection cells: every spawn and allocation goes through the
    // fallible entry points while the injector denies ~1 in 4 requests.
    // Under every policy and seed the run must complete (no aborts), the
    // work actually performed must balance, and denied requests must be
    // exactly the injector's count.
    let seeds = seed_budget() / 4;
    for kind in POLICIES {
        for seed in 0..seeds.max(2) {
            let cfg = Config::new(4, kind)
                .with_alloc_failures(4)
                .with_perturbation(seed);
            let ((spawned, denied_spawns, denied_allocs), report) = ptdf::run(cfg, || {
                let mut spawned = 0u64;
                let mut denied_spawns = 0u64;
                let mut denied_allocs = 0u64;
                let mut handles = Vec::new();
                for i in 0..32u64 {
                    match ptdf::try_spawn(move || {
                        match ptdf::try_rt_alloc(1024) {
                            Ok(()) => {
                                ptdf::work(100 + i);
                                ptdf::rt_free(1024);
                                0u64
                            }
                            Err(_) => 1u64,
                        }
                    }) {
                        Ok(h) => {
                            spawned += 1;
                            handles.push(h);
                        }
                        Err(_) => denied_spawns += 1,
                    }
                }
                for h in handles {
                    denied_allocs += h.join();
                }
                (spawned, denied_spawns, denied_allocs)
            });
            assert_eq!(spawned + denied_spawns, 32, "{kind:?} seed {seed}");
            let leaks = report.leaks.as_ref().expect("injection implies ledger");
            assert_eq!(
                leaks.injected_failures,
                denied_spawns + denied_allocs,
                "{kind:?} seed {seed}: injector count drifted: {leaks:?}"
            );
            assert!(
                leaks.is_clean(),
                "{kind:?} seed {seed}: denied requests leaked: {leaks:?}"
            );
        }
    }
}

#[test]
fn captured_seed_pairs_replay_bit_exactly() {
    // The promise behind the printed replay recipe: the same
    // `(policy, seed)` pair explores the identical schedule, so the two
    // traces are equal structure-for-structure, timestamp-for-timestamp.
    for kind in [SchedKind::Df, SchedKind::DfDeques, SchedKind::Ws] {
        for seed in [3u64, 0xDEAD_BEEF] {
            let capture = || {
                let cfg = Config::new(4, kind).with_trace().with_perturbation(seed);
                let (_, report) = ptdf::run(cfg, || sync_storm(4, 4));
                report.trace.expect("tracing was enabled")
            };
            let first = capture();
            let second = capture();
            assert_eq!(first, second, "{kind:?} seed {seed}: replay diverged");
        }
    }
}

#[test]
fn perturbation_actually_perturbs() {
    // Different seeds must be able to produce different schedules —
    // otherwise the matrix above explores nothing. At least one adjacent
    // seed pair must differ somewhere in the trace.
    let traces: Vec<_> = (0..4u64)
        .map(|seed| {
            let cfg = Config::new(4, SchedKind::Ws).with_trace().with_perturbation(seed);
            let (_, report) = ptdf::run(cfg, || sync_storm(4, 4));
            report.trace.expect("tracing was enabled")
        })
        .collect();
    assert!(
        traces.windows(2).any(|w| w[0] != w[1]),
        "four different seeds produced four identical schedules"
    );
    // An unperturbed run differs from a perturbed one too (jitter moves
    // virtual timestamps even when the interleaving survives).
    let (_, base) = ptdf::run(Config::new(4, SchedKind::Ws).with_trace(), || sync_storm(4, 4));
    assert!(
        traces.iter().any(|t| *t != base.trace.clone().unwrap()),
        "perturbation had no observable effect at all"
    );
}

#[test]
fn replay_recipe_names_the_cell() {
    let cfg = Config::new(2, SchedKind::DfDeques)
        .with_trace()
        .with_perturbation(77);
    let (_, report) = ptdf::run(cfg, || sync_storm(2, 2));
    let check = check_trace(&report.trace.unwrap());
    assert_eq!(
        check.replay.as_deref(),
        Some("--sched df-deques --perturb-seed 77")
    );
}
