//! Deadlock-sentinel integration matrix (ISSUE 5 acceptance).
//!
//! Drives the waits-for cycle detector through every shape it claims to
//! catch — self-deadlock, 2-cycle and 3-cycle lock-order inversions — under
//! all five scheduling policies, with and without seeded perturbation, and
//! pins down the exact cycle membership reported through both channels
//! ([`ptdf::Report::deadlocks`] and the flight-recorder events via
//! [`ptdf::check_trace`]). The timed sync APIs are exercised as the
//! sanctioned escape hatch (deadline-bounded waits are exempt from the
//! cycle check), and the virtual-time watchdog's [`ptdf::StallInfo`]
//! verdict is pinned with a deliberately lost wakeup.

use ptdf::{
    check_trace, run, spawn, try_run, Condvar, Config, DeadlockError, Mutex, RwLock, SchedKind,
    Semaphore, TimedOut, Violation, VirtTime,
};

const POLICIES: [SchedKind; 5] = [
    SchedKind::Fifo,
    SchedKind::Lifo,
    SchedKind::Df,
    SchedKind::DfDeques,
    SchedKind::Ws,
];

/// Holds long enough to cross the 200 µs interleaving quantum, so every
/// cycle member demonstrably acquires its first lock before any member
/// attempts its second.
const HOLD: u64 = 300_000;

/// Runs `f` under `cfg` with tracing, absorbing the expected
/// [`DeadlockError`] unwinds via `try_join`, and returns the sorted cycle
/// membership from the report plus whether the trace checker flagged a
/// [`Violation::Deadlock`].
fn detect(cfg: Config, f: impl FnOnce() + 'static) -> (Vec<u32>, bool) {
    let (_, report) = run(cfg.with_trace(), f);
    assert_eq!(report.deadlocks().len(), 1, "exactly one cycle recorded");
    let mut members = report.deadlocks()[0].cycle.clone();
    members.sort_unstable();
    let check = check_trace(&report.trace.expect("tracing enabled"));
    let flagged = check
        .violations
        .iter()
        .any(|v| matches!(v, Violation::Deadlock { .. }));
    (members, flagged)
}

#[test]
fn self_deadlock_is_a_one_cycle_under_every_policy() {
    for kind in POLICIES {
        let (members, flagged) = detect(Config::new(2, kind), || {
            let m = Mutex::new(());
            let h = spawn(move || {
                let _g1 = m.lock();
                let _g2 = m.lock(); // relock: waits-for cycle [t1]
            });
            let err = h.try_join().expect_err("self-deadlock must unwind");
            let payload = err.into_panic().expect("panicked");
            let dl = payload
                .downcast_ref::<DeadlockError>()
                .expect("structured DeadlockError payload");
            assert_eq!(dl.info.cycle, vec![1], "{:?}", dl.info);
        });
        assert_eq!(members, vec![1], "{kind:?}");
        assert!(flagged, "{kind:?}: trace must check dirty");
    }
}

#[test]
fn two_thread_lock_inversion_names_both_members() {
    for kind in POLICIES {
        let (members, flagged) = detect(Config::new(2, kind), || {
            let a = Mutex::new(());
            let b = Mutex::new(());
            let (a2, b2) = (a.clone(), b.clone());
            let t1 = spawn(move || {
                let _ga = a2.lock();
                ptdf::work(HOLD);
                let _gb = b2.lock();
            });
            let t2 = spawn(move || {
                let _gb = b.lock();
                ptdf::work(HOLD);
                let _ga = a.lock();
            });
            let r1 = t1.try_join();
            let r2 = t2.try_join();
            assert!(
                r1.is_err() != r2.is_err(),
                "exactly one member unwinds; the other completes once \
                 the unwind releases its lock"
            );
        });
        assert_eq!(members, vec![1, 2], "{kind:?}");
        assert!(flagged, "{kind:?}: trace must check dirty");
    }
}

#[test]
fn three_thread_lock_cycle_names_all_members() {
    for kind in POLICIES {
        let (members, flagged) = detect(Config::new(3, kind), || {
            // t1 holds a wants b, t2 holds b wants c, t3 holds c wants a.
            let locks = [Mutex::new(()), Mutex::new(()), Mutex::new(())];
            let mut handles = Vec::new();
            for i in 0..3 {
                let own = locks[i].clone();
                let next = locks[(i + 1) % 3].clone();
                handles.push(spawn(move || {
                    let _g1 = own.lock();
                    ptdf::work(HOLD);
                    let _g2 = next.lock();
                }));
            }
            let unwound = handles
                .into_iter()
                .map(|h| h.try_join().is_err() as u32)
                .sum::<u32>();
            assert_eq!(
                unwound, 1,
                "exactly one member unwinds; its released lock resolves the rest"
            );
        });
        assert_eq!(members, vec![1, 2, 3], "{kind:?}");
        assert!(flagged, "{kind:?}: trace must check dirty");
    }
}

#[test]
fn detection_survives_schedule_perturbation() {
    // The cycle must be found regardless of how the schedule is jittered:
    // perturbation reorders and delays, but the waits-for graph it produces
    // is the same graph.
    for kind in POLICIES {
        for seed in [1u64, 42, 0xFEED] {
            let cfg = Config::new(2, kind).with_perturbation(seed);
            let (members, flagged) = detect(cfg, || {
                let a = Mutex::new(());
                let b = Mutex::new(());
                let (a2, b2) = (a.clone(), b.clone());
                let t1 = spawn(move || {
                    let _ga = a2.lock();
                    ptdf::work(HOLD);
                    let _gb = b2.lock();
                });
                let t2 = spawn(move || {
                    let _gb = b.lock();
                    ptdf::work(HOLD);
                    let _ga = a.lock();
                });
                let _ = t1.try_join();
                let _ = t2.try_join();
            });
            assert_eq!(members, vec![1, 2], "{kind:?} seed {seed}");
            assert!(flagged, "{kind:?} seed {seed}: trace must check dirty");
        }
    }
}

#[test]
fn rwlock_and_join_edges_close_cycles_too() {
    // Mixed-primitive cycle: t1 holds mutex m, wants rwlock w (write);
    // t2 holds w (read), wants m. Both edge kinds traverse the holders map.
    let (members, _) = detect(Config::new(2, SchedKind::Df), || {
        let m = Mutex::new(());
        let w = RwLock::new(());
        let (m2, w2) = (m.clone(), w.clone());
        let t1 = spawn(move || {
            let _gm = m2.lock();
            ptdf::work(HOLD);
            let _gw = w2.write();
        });
        let t2 = spawn(move || {
            let _gw = w.read();
            ptdf::work(HOLD);
            let _gm = m.lock();
        });
        let _ = t1.try_join();
        let _ = t2.try_join();
    });
    assert_eq!(members, vec![1, 2]);

    // Join edge: t1 joins t2 while t2 waits on a mutex t1 holds.
    let result = std::panic::catch_unwind(|| {
        run(Config::new(2, SchedKind::Df), || {
            let m = Mutex::new(());
            let m2 = m.clone();
            let _gm = m.lock();
            let t = spawn(move || {
                let _g = m2.lock();
            });
            ptdf::work(HOLD);
            t.join(); // root waits for t1, t1 waits for root's mutex
        });
    });
    let err = result.expect_err("join cycle must unwind the root");
    let dl = err
        .downcast_ref::<DeadlockError>()
        .expect("structured payload through the root join");
    let mut cycle = dl.info.cycle.clone();
    cycle.sort_unstable();
    assert_eq!(cycle, vec![0, 1], "root and child form the cycle");
}

#[test]
fn timed_waits_are_exempt_and_break_the_cycle() {
    // The same 2-thread inversion, but one side bounds its second acquire:
    // no cycle check fires, the deadline expires, the timed side backs off
    // and releases — the run completes with zero recorded deadlocks.
    for kind in POLICIES {
        let ((timed_out, completed), report) =
            run(Config::new(2, kind).with_trace(), || {
                let a = Mutex::new(());
                let b = Mutex::new(());
                let (a2, b2) = (a.clone(), b.clone());
                let t1 = spawn(move || {
                    let _ga = a2.lock();
                    ptdf::work(HOLD);
                    match b2.lock_timeout(VirtTime::from_ms(1)) {
                        Ok(_g) => false,
                        Err(TimedOut) => true, // back off: drop a, retry later
                    }
                });
                let t2 = spawn(move || {
                    let _gb = b.lock();
                    ptdf::work(HOLD);
                    let _ga = a.lock();
                    true
                });
                let timed_out = t1.join();
                let completed = t2.join();
                (timed_out, completed)
            });
        assert!(completed, "{kind:?}: untimed side must complete");
        assert!(
            report.deadlocks().is_empty(),
            "{kind:?}: timed waits must not trip the sentinel"
        );
        if timed_out {
            // The trace must carry the sanctioned Timeout wake and still
            // check clean (a bounded wait is not a violation).
            let check = check_trace(&report.trace.expect("tracing enabled"));
            assert!(check.is_clean(), "{kind:?}: {:?}", check.violations);
        }
    }
}

#[test]
fn timed_api_semantics() {
    run(Config::new(2, SchedKind::Df), || {
        // Uncontended timed lock succeeds immediately.
        let m = Mutex::new(1u32);
        assert!(m.lock_timeout(VirtTime::from_us(1)).is_ok());

        // Contended timed lock expires while the holder works past it.
        let m2 = m.clone();
        let holder = spawn(move || {
            let _g = m2.lock();
            ptdf::work(2_000_000); // ~12 virtual ms
        });
        ptdf::work(HOLD); // let the holder demonstrably acquire
        let err = m.lock_timeout(VirtTime::from_ms(1));
        assert!(matches!(err, Err(TimedOut)), "holder outlives the deadline");
        holder.join();
        assert!(m.lock_timeout(VirtTime::from_us(1)).is_ok(), "free again");

        // Semaphore: zero permits times out; a release grants in time.
        let sem = Semaphore::new(0);
        assert_eq!(sem.acquire_timeout(VirtTime::from_us(50)), Err(TimedOut));
        let sem2 = sem.clone();
        let releaser = spawn(move || {
            ptdf::work(10_000);
            sem2.release();
        });
        assert_eq!(sem.acquire_timeout(VirtTime::from_ms(5)), Ok(()));
        releaser.join();

        // Condvar: un-notified wait expires and re-acquires the guard;
        // a notify before the deadline delivers normally.
        let gate = Mutex::new(false);
        let cv = Condvar::new();
        let g = gate.lock();
        let (g, r) = cv.wait_timeout(g, VirtTime::from_us(100));
        assert_eq!(r, Err(TimedOut));
        assert!(!*g, "guard re-acquired with state intact");
        drop(g);
        let (gate2, cv2) = (gate.clone(), cv.clone());
        let notifier = spawn(move || {
            ptdf::work(10_000);
            *gate2.lock() = true;
            cv2.notify_one();
        });
        let mut g = gate.lock();
        let mut timed_out = false;
        while !*g {
            let (g2, r) = cv.wait_timeout(g, VirtTime::from_ms(5));
            g = g2;
            if r.is_err() {
                timed_out = true;
                break;
            }
        }
        assert!(!timed_out, "notify must beat the generous deadline");
        drop(g);
        notifier.join();

        // join_timeout: returns the handle back on expiry, value on time.
        let slow = spawn(|| {
            ptdf::work(2_000_000);
            7u32
        });
        let back = slow
            .join_timeout(VirtTime::from_us(100))
            .expect_err("slow thread outlives the deadline");
        assert!(matches!(back.join_timeout(VirtTime::from_ms(60)), Ok(7)));
    });
}

#[test]
fn lost_wakeup_stalls_with_a_verdict_instead_of_panicking() {
    // A deliberately lost wakeup: a waiter on a semaphore nobody releases,
    // plus the root blocked joining it. No waits-for cycle exists (the
    // semaphore edge has no holder), so the cycle detector stays quiet —
    // the virtual-time watchdog must declare a stall naming both threads.
    for kind in [SchedKind::Fifo, SchedKind::Df, SchedKind::Ws] {
        let err = try_run(Config::new(2, kind), || {
            let sem = Semaphore::new(0);
            let h = spawn(move || sem.acquire());
            h.join();
        })
        .expect_err("run can never complete");
        let stall = &err.stall;
        assert_eq!(stall.scheduler, kind.name(), "verdict names the policy");
        let waiter = stall
            .threads
            .iter()
            .find(|t| t.thread == 1)
            .expect("the stranded waiter is listed");
        assert_eq!(
            waiter.reason.map(|r| r.name()),
            Some("semaphore"),
            "verdict names the wait reason"
        );
        let root = stall
            .threads
            .iter()
            .find(|t| t.thread == 0)
            .expect("the blocked joiner is listed");
        assert_eq!(root.reason.map(|r| r.name()), Some("join"));
        assert!(err.report.stalled.is_some(), "report carries the verdict");
        let text = err.to_string();
        assert!(text.contains("stalled"), "{text}");
    }
}

#[test]
fn condvar_wait_with_no_notifier_stalls_cleanly() {
    // The condvar flavor of a lost wakeup; also proves guard destructors ran
    // during the stall teardown (the mutex ends unlocked in the sweep).
    let err = try_run(Config::new(2, SchedKind::Df), || {
        let gate = Mutex::new(false);
        let cv = Condvar::new();
        let h = spawn(move || {
            let mut g = gate.lock();
            while !*g {
                g = cv.wait(g); // nobody will ever notify
            }
        });
        h.join();
    })
    .expect_err("run can never complete");
    assert!(err
        .stall
        .threads
        .iter()
        .any(|t| t.thread == 1 && t.reason.map(|r| r.name()) == Some("condvar")));
}

#[test]
fn backoff_retry_resolves_contention() {
    // The seeded backoff helper turns a TimedOut into eventual success.
    let (won, _) = run(Config::new(2, SchedKind::Ws), || {
        let m = Mutex::new(0u32);
        let m2 = m.clone();
        let holder = spawn(move || {
            let _g = m2.lock();
            ptdf::work(1_000_000);
        });
        ptdf::work(HOLD);
        let mut bo = ptdf::backoff::Backoff::new(9);
        let won = bo
            .retry(64, || m.lock_timeout(VirtTime::from_us(500)).map(|_| ()))
            .is_ok();
        holder.join();
        won
    });
    assert!(won, "bounded retries must eventually win the lock");
}
