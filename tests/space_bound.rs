//! End-to-end audit of the paper's space guarantee: the depth-first
//! schedulers must keep every benchmark's footprint within
//! `S1 + factor · p · D` (serial space plus a per-processor depth
//! allowance), while the stock FIFO scheduler with 1 MB stacks blows the
//! same bound on the fine-grained matmul (§3 / Figure 5). The bound is
//! checked by the *runtime enforcer* ([`ptdf::Config::with_space_bound`]),
//! not by post-hoc arithmetic, so this also exercises the armed machine
//! end-to-end: violations surface through
//! [`ptdf::Report::bound_violations`] and through [`ptdf::check_trace`]
//! (the same signal `ptdf-trace audit` reads from an exported trace).
//!
//! `REPRO_QUICK=1` trims the all-benchmarks sweep to three apps for CI
//! smoke runs; problem sizes themselves follow `REPRO_FULL` (see
//! `ptdf_bench::full_scale`).

use ptdf::{check_trace, Config, SchedKind, Violation, STACK_1MB};
use ptdf_bench::drivers::{all_drivers, matmul_driver};

const PROCS: usize = 4;

/// Per-processor depth allowance `D`, in bytes: one depth-first path of
/// live threads (stacks plus allocation overshoot along the path). With
/// `FACTOR · p · D = 4 MB` this clears every benchmark's measured DF
/// overhead at the test scale (max ≈ 3.3 MB, decision tree) while sitting
/// far below the FIFO matmul explosion (≈ 21 MB over serial): FIFO leaks
/// whole breadth levels of 1 MB stacks, not one path per processor.
const DEPTH_BYTES: u64 = 256 * 1024;
const FACTOR: u64 = 4;

fn quick() -> bool {
    std::env::var_os("REPRO_QUICK").is_some()
}

#[test]
fn df_schedulers_stay_within_s1_plus_p_depth() {
    let mut drivers = all_drivers();
    if quick() {
        drivers.truncate(3); // matmul, barnes-hut, fmm
    }
    for d in drivers {
        let s1 = (d.serial)().s1_bytes();
        for kind in [SchedKind::Df, SchedKind::DfDeques] {
            let cfg =
                Config::new(PROCS, kind).with_space_bound_terms(s1, FACTOR, DEPTH_BYTES);
            let bound = cfg.space_bound.expect("armed");
            let report = (d.fine)(cfg);
            assert_eq!(
                report.bound_violations(),
                0,
                "{} under {kind:?}: footprint {} exceeded S1 {s1} + {FACTOR}*p*D = {bound}",
                d.name,
                report.footprint(),
            );
            assert!(report.footprint() <= bound, "enforcer missed an excursion");
        }
    }
}

#[test]
fn native_fifo_breaks_the_same_bound_on_fine_matmul() {
    let d = matmul_driver();
    let s1 = (d.serial)().s1_bytes();
    let cfg = Config::new(PROCS, SchedKind::Fifo)
        .with_stack(STACK_1MB)
        .with_space_bound_terms(s1, FACTOR, DEPTH_BYTES)
        .with_trace();
    let bound = cfg.space_bound.expect("armed");
    let report = (d.fine)(cfg);
    assert!(
        report.bound_violations() > 0,
        "FIFO matmul stayed under the bound: footprint {} <= {bound}",
        report.footprint(),
    );
    assert!(report.footprint() > bound);

    // The excursion is visible to trace consumers: exactly one crossing
    // event (the footprint is monotone) that check_trace reports.
    let trace = report.trace.as_ref().expect("traced");
    let check = check_trace(trace);
    let crossings: Vec<_> = check
        .violations
        .iter()
        .filter(|v| matches!(v, Violation::SpaceBound { .. }))
        .collect();
    assert_eq!(crossings.len(), 1, "one crossing marks the excursion");
    if let Violation::SpaceBound { bound: b, footprint, .. } = crossings[0] {
        assert_eq!(*b, bound);
        assert!(*footprint > bound);
    }
}
