//! Integration tests asserting the paper's qualitative claims end-to-end,
//! at test-friendly scales. Each test names the paper section or figure it
//! guards.

use ptdf::{Config, SchedKind, STACK_1MB, STACK_8KB};
use ptdf_apps::{fft, fmm, matmul, volren};

fn matmul_report(kind: SchedKind, procs: usize, stack: u64) -> (ptdf::Report, ptdf::VirtTime) {
    let p = matmul::Params {
        n: 128,
        base: 16,
        seed: 1,
    };
    let (a, b) = matmul::gen_input(&p);
    let (_, serial) = ptdf::run_serial(ptdf::CostModel::ultrasparc_167(), {
        let (a, b) = (a.clone(), b.clone());
        move || matmul::multiply(&a, &b, &p)
    });
    let cfg = Config::new(procs, kind).with_stack(stack);
    let (_, report) = ptdf::run(cfg, move || matmul::multiply(&a, &b, &p));
    (report, serial.time)
}

/// §3 / Figure 5: the native FIFO scheduler makes the fine-grained matmul
/// allocate far more memory than the serial program and keeps a huge number
/// of threads live.
#[test]
fn fig5_native_scheduler_explodes_space() {
    let (fifo, _) = matmul_report(SchedKind::Fifo, 4, STACK_1MB);
    let (df, _) = matmul_report(SchedKind::Df, 4, STACK_1MB);
    assert!(
        fifo.max_live_threads() > 10 * df.max_live_threads(),
        "fifo {} vs df {}",
        fifo.max_live_threads(),
        df.max_live_threads()
    );
    assert!(fifo.footprint() > 2 * df.footprint());
}

/// §4 / Figure 7: scheduler ordering on both axes — DF beats FIFO on time
/// and space; LIFO lies between them on space.
#[test]
fn fig7_scheduler_ordering() {
    let (fifo, serial) = matmul_report(SchedKind::Fifo, 8, STACK_1MB);
    let (lifo, _) = matmul_report(SchedKind::Lifo, 8, STACK_1MB);
    let (df, _) = matmul_report(SchedKind::Df, 8, STACK_1MB);
    let s = |r: &ptdf::Report| r.speedup_vs(serial);
    assert!(
        s(&df) > s(&fifo),
        "df speedup {} must beat fifo {}",
        s(&df),
        s(&fifo)
    );
    assert!(df.footprint() < fifo.footprint());
    assert!(lifo.footprint() < fifo.footprint());
    assert!(lifo.max_live_threads() < fifo.max_live_threads());
}

/// §4 item 3: reducing the default stack size reduces the footprint of a
/// thread-churning program under the original scheduler.
#[test]
fn small_stacks_reduce_footprint() {
    let (big, _) = matmul_report(SchedKind::Fifo, 4, STACK_1MB);
    let (small, _) = matmul_report(SchedKind::Fifo, 4, STACK_8KB);
    assert!(
        small.footprint() < big.footprint(),
        "8KB stacks {} must beat 1MB stacks {}",
        small.footprint(),
        big.footprint()
    );
}

/// Figure 10's mechanism: with p a power of two, p threads partition the
/// DFT perfectly; with p = 6 the 256-thread version is better balanced.
#[test]
fn fig10_thread_count_vs_processors() {
    let run_fft = |threads: usize, procs: usize, kind: SchedKind| {
        let p = fft::Params {
            log2n: 16,
            threads,
            seed: 2,
        };
        let x = fft::gen_input(&p);
        let (_, r) = ptdf::run(Config::new(procs, kind), move || fft::fft(&x, &p));
        r.makespan()
    };
    // p = 3 (not a power of two): 3 threads split the power-of-two problem
    // as [n/2, n/4, n/4] — the n/2 leaf dominates the makespan. A larger
    // thread pool lets the scheduler balance the load.
    let three_p = run_fft(3, 3, SchedKind::Df);
    let three_many = run_fft(24, 3, SchedKind::Df);
    assert!(
        three_many < three_p,
        "24 threads ({three_many}) must beat 3 threads ({three_p}) on 3 procs"
    );
    // p = 4 (a power of two): p threads partition perfectly and win (or tie).
    let four_p = run_fft(4, 4, SchedKind::Df);
    let four_many = run_fft(24, 4, SchedKind::Df);
    assert!(
        four_p < four_many,
        "4 threads ({four_p}) must beat 24 threads ({four_many}) on 4 procs"
    );
}

/// §5.1.2 / Figure 9(a): the FMM's dynamically allocating M2L phase uses
/// less memory under the space-efficient scheduler.
#[test]
fn fig9_fmm_memory_ordering() {
    let p = fmm::Params {
        n_particles: 800,
        levels: 2,
        terms: 4,
        mpl_chunk: 5,
        seed: 3,
    };
    let particles = fmm::gen_particles(&p);
    let run_with = |kind| {
        let particles = particles.clone();
        let (_, r) = ptdf::run(Config::new(4, kind), move || fmm::run_fmm(&particles, &p));
        r
    };
    let fifo = run_with(SchedKind::Fifo);
    let df = run_with(SchedKind::Df);
    assert!(
        df.footprint() <= fifo.footprint(),
        "df {} vs fifo {}",
        df.footprint(),
        fifo.footprint()
    );
    assert!(df.max_live_threads() < fifo.max_live_threads());
}

/// Figure 11's left edge: finer thread granularity costs locality — the
/// cache-model miss count rises as tiles/thread shrinks.
#[test]
fn fig11_finer_grain_more_cache_misses() {
    let base = volren::Params::small();
    let vol = volren::gen_volume(base.size);
    let misses = |tiles_per_thread: usize| {
        let prm = volren::Params {
            tiles_per_thread,
            ..base
        };
        let vol = vol.clone();
        let (_, r) = ptdf::run(Config::new(8, SchedKind::Fifo), move || {
            volren::render_fine(&vol, &prm)
        });
        r.stats.mem.cache_misses
    };
    let fine = misses(2);
    let coarse = misses(48);
    assert!(
        fine > coarse,
        "fine grain must miss more: {fine} vs {coarse}"
    );
}

/// §2.1: the DF scheduler supports blocking synchronization (mutexes,
/// condition variables) that Cilk-style systems exclude — exercised here
/// with a mutex-protected shared counter under heavy forking.
#[test]
fn blocking_sync_under_df() {
    let (v, _) = ptdf::run(Config::new(4, SchedKind::Df), || {
        let m = ptdf::Mutex::new(0u32);
        ptdf::scope(|s| {
            for _ in 0..50 {
                let m = m.clone();
                s.spawn(move || {
                    let mut g = m.lock();
                    ptdf::work(1000);
                    *g += 1;
                });
            }
        });
        let v = *m.lock();
        v
    });
    assert_eq!(v, 50);
}

/// Determinism: identical configurations produce bit-identical reports
/// (the property every experiment harness relies on).
#[test]
fn experiments_are_reproducible() {
    let go = || {
        let p = matmul::Params {
            n: 64,
            base: 16,
            seed: 9,
        };
        let (a, b) = matmul::gen_input(&p);
        let (c, r) = ptdf::run(Config::new(5, SchedKind::Df), move || {
            matmul::multiply(&a, &b, &p)
        });
        (c, r.makespan(), r.footprint(), r.stats.mem.cache_misses)
    };
    let (c1, t1, f1, m1) = go();
    let (c2, t2, f2, m2) = go();
    assert_eq!(c1, c2);
    assert_eq!(t1, t2);
    assert_eq!(f1, f2);
    assert_eq!(m1, m2);
}
