//! Chaos-fault soak matrix (ISSUE 5 tentpole acceptance).
//!
//! Runs benchmark-shaped workloads under [`ptdf::Config::with_chaos`] —
//! seeded lock-holder preemption storms, delayed wake delivery, spurious
//! condvar wakeups — across every scheduling policy and a budget of seeds,
//! and demands a **definite verdict** from every cell:
//!
//! * well-synchronized workloads must *complete* with correct results
//!   (chaos may reorder and delay, never corrupt);
//! * timed-API workloads may observe [`ptdf::TimedOut`] but still complete;
//! * deadlock-prone workloads must either complete or report the exact
//!   waits-for cycle through [`ptdf::Report::deadlocks`];
//! * nothing may hang: a lost wakeup would surface as a [`ptdf::StallInfo`]
//!   stall verdict from [`ptdf::try_run`], which the matrix treats as an
//!   engine bug and fails loudly with the verdict text.
//!
//! Chaos cells replay bit-exactly: `(policy, perturb seed, chaos seed)`
//! pins the entire schedule, which `ptdf-trace check` prints as the replay
//! recipe (`--sched <p> --perturb-seed <s> --chaos-seed <c>`).
//!
//! `REPRO_QUICK=1` shrinks the seed budget for CI smoke runs.

use ptdf::{
    check_trace, run, spawn, try_run, Barrier, Condvar, Config, Mutex, RwLock, SchedKind,
    Semaphore, VirtTime,
};

const POLICIES: [SchedKind; 5] = [
    SchedKind::Fifo,
    SchedKind::Lifo,
    SchedKind::Df,
    SchedKind::DfDeques,
    SchedKind::Ws,
];

fn seed_budget() -> u64 {
    if std::env::var_os("REPRO_QUICK").is_some() {
        2
    } else {
        6
    }
}

#[derive(Debug, PartialEq)]
enum Verdict {
    Completed,
    Deadlock,
}

/// Runs one matrix cell to a definite verdict. A stall is never a valid
/// outcome for the workloads below — it panics with the watchdog's full
/// verdict so the failing cell is immediately diagnosable.
fn cell<T: 'static>(cfg: Config, f: impl FnOnce() -> T + 'static) -> (Verdict, T) {
    match try_run(cfg, f) {
        Ok((v, report)) => {
            if report.deadlocks().is_empty() {
                (Verdict::Completed, v)
            } else {
                (Verdict::Deadlock, v)
            }
        }
        Err(e) => panic!("cell stalled — lost wakeup under chaos:\n{e}"),
    }
}

/// The sync-storm workload: every blocking primitive every round, with
/// spurious-wakeup-safe predicate loops (chaos delivers spurious condvar
/// wakes by design).
fn sync_storm(nthreads: usize, rounds: usize) -> u64 {
    let counter = Mutex::new(0u64);
    let gate = Mutex::new(0usize);
    let cv = Condvar::new();
    let barrier = Barrier::new(nthreads);
    let sem = Semaphore::new((nthreads / 2) as i64);
    ptdf::scope(|s| {
        for _ in 0..nthreads {
            let counter = counter.clone();
            let gate = gate.clone();
            let cv = cv.clone();
            let barrier = barrier.clone();
            let sem = sem.clone();
            s.spawn(move || {
                for r in 1..=rounds {
                    sem.acquire();
                    *counter.lock() += 1;
                    ptdf::work(200);
                    sem.release();
                    let mut g = gate.lock();
                    *g += 1;
                    if *g == nthreads * r {
                        cv.notify_all();
                    } else {
                        g = cv.wait_while(g, |a| *a < nthreads * r);
                    }
                    drop(g);
                    barrier.wait();
                }
            });
        }
    });
    let total = *counter.lock();
    total
}

/// Fork/join storm: a recursive binary tree of spawns, the bench suite's
/// core shape.
fn forkjoin_tree(depth: u32) -> u64 {
    if depth == 0 {
        ptdf::work(500);
        return 1;
    }
    let l = spawn(move || forkjoin_tree(depth - 1));
    let r = forkjoin_tree(depth - 1);
    l.join() + r
}

/// Readers/writers mix over one rwlock.
fn rw_mix() -> i64 {
    let l = RwLock::new(0i64);
    ptdf::scope(|s| {
        for _ in 0..3 {
            let l = l.clone();
            s.spawn(move || {
                for _ in 0..8 {
                    let mut g = l.write();
                    let v = *g;
                    ptdf::work(1_000);
                    *g = v + 1;
                }
            });
        }
        for _ in 0..5 {
            let l = l.clone();
            s.spawn(move || {
                let mut last = -1i64;
                for _ in 0..12 {
                    let g = l.read();
                    assert!(*g >= last, "value went backwards under chaos");
                    last = *g;
                    ptdf::work(300);
                }
            });
        }
    });
    let v = *l.read();
    v
}

/// Timed-API workload: contended locks taken only through `lock_timeout`
/// with seeded backoff; returns (successes, timeouts observed).
fn timed_lock_storm(nthreads: usize) -> (u64, u64) {
    let m = Mutex::new(0u64);
    let stats = Mutex::new((0u64, 0u64));
    ptdf::scope(|s| {
        for i in 0..nthreads {
            let m = m.clone();
            let stats = stats.clone();
            s.spawn(move || {
                let mut bo = ptdf::backoff::Backoff::new(i as u64);
                for _ in 0..6 {
                    match bo.retry(32, || {
                        m.lock_timeout(VirtTime::from_us(100)).map(|mut g| {
                            ptdf::work(5_000);
                            *g += 1;
                        })
                    }) {
                        Ok(()) => stats.lock().0 += 1,
                        Err(_) => stats.lock().1 += 1,
                    }
                }
            });
        }
    });
    let out = *stats.lock();
    out
}

/// Deadlock-prone workload: classic AB-BA inversion, unwinds absorbed via
/// `try_join` so the run itself always completes.
fn abba() -> u32 {
    let a = Mutex::new(());
    let b = Mutex::new(());
    let (a2, b2) = (a.clone(), b.clone());
    let t1 = spawn(move || {
        let _ga = a2.lock();
        ptdf::work(300_000);
        let _gb = b2.lock();
    });
    let t2 = spawn(move || {
        let _gb = b.lock();
        ptdf::work(300_000);
        let _ga = a.lock();
    });
    t1.try_join().is_err() as u32 + t2.try_join().is_err() as u32
}

#[test]
fn correct_workloads_complete_under_chaos() {
    let (nthreads, rounds) = (4, 4);
    for kind in POLICIES {
        for seed in 0..seed_budget() {
            let cfg = || {
                Config::new(4, kind)
                    .with_perturbation(seed)
                    .with_chaos(seed.wrapping_mul(0x9E37_79B9) + 1)
            };
            let (v, total) = cell(cfg(), move || sync_storm(nthreads, rounds));
            assert_eq!(v, Verdict::Completed, "{kind:?} seed {seed}: storm");
            assert_eq!(total, (nthreads * rounds) as u64, "{kind:?} seed {seed}");

            let (v, leaves) = cell(cfg(), || forkjoin_tree(5));
            assert_eq!(v, Verdict::Completed, "{kind:?} seed {seed}: forkjoin");
            assert_eq!(leaves, 32, "{kind:?} seed {seed}");

            let (v, writes) = cell(cfg(), rw_mix);
            assert_eq!(v, Verdict::Completed, "{kind:?} seed {seed}: rw");
            assert_eq!(writes, 24, "{kind:?} seed {seed}");
        }
    }
}

#[test]
fn timed_workloads_get_definite_verdicts_under_chaos() {
    for kind in POLICIES {
        for seed in 0..seed_budget() {
            let cfg = Config::new(2, kind)
                .with_perturbation(seed)
                .with_chaos(seed ^ 0xC0FFEE);
            let (v, (ok, timeouts)) = cell(cfg, || timed_lock_storm(4));
            assert_eq!(v, Verdict::Completed, "{kind:?} seed {seed}");
            // Every round resolves: a success or an exhausted retry budget.
            assert_eq!(ok + timeouts, 4 * 6, "{kind:?} seed {seed}");
            assert!(ok > 0, "{kind:?} seed {seed}: nobody ever won the lock");
        }
    }
}

#[test]
fn deadlock_prone_workload_never_hangs_under_chaos() {
    for kind in POLICIES {
        for seed in 0..seed_budget() {
            let cfg = Config::new(2, kind)
                .with_perturbation(seed)
                .with_chaos(seed ^ 0xDEAD)
                .with_trace();
            match try_run(cfg, abba) {
                Ok((unwound, report)) => {
                    if report.deadlocks().is_empty() {
                        // Chaos delays let one thread finish both locks
                        // before the other started: a legal escape.
                        assert_eq!(unwound, 0, "{kind:?} seed {seed}");
                    } else {
                        assert_eq!(unwound, 1, "{kind:?} seed {seed}");
                        let mut members = report.deadlocks()[0].cycle.clone();
                        members.sort_unstable();
                        assert_eq!(members, vec![1, 2], "{kind:?} seed {seed}");
                        // The flight recorder names the same cycle for
                        // `ptdf-trace check`.
                        let check = check_trace(&report.trace.expect("traced"));
                        assert!(
                            check.violations.iter().any(|v| matches!(
                                v,
                                ptdf::Violation::Deadlock { .. }
                            )),
                            "{kind:?} seed {seed}: {:?}",
                            check.violations
                        );
                    }
                }
                Err(e) => panic!("{kind:?} seed {seed} stalled:\n{e}"),
            }
        }
    }
}

#[test]
fn chaos_cells_replay_bit_exactly() {
    // The replay promise extends to chaos: `(policy, perturb, chaos)` pins
    // the schedule, fault injection included.
    for kind in [SchedKind::Df, SchedKind::Ws] {
        let capture = || {
            let cfg = Config::new(4, kind)
                .with_trace()
                .with_perturbation(5)
                .with_chaos(17);
            let (_, report) = run(cfg, || sync_storm(4, 3));
            report.trace.expect("traced")
        };
        assert_eq!(capture(), capture(), "{kind:?}: chaos replay diverged");
    }
}

#[test]
fn chaos_actually_injects_faults() {
    // A chaos cell must differ from its chaos-free twin — otherwise the
    // matrix above soaks nothing.
    let go = |chaos: Option<u64>| {
        let mut cfg = Config::new(4, SchedKind::Ws).with_trace().with_perturbation(3);
        if let Some(c) = chaos {
            cfg = cfg.with_chaos(c);
        }
        let (_, report) = run(cfg, || sync_storm(4, 3));
        report.trace.expect("traced")
    };
    let base = go(None);
    assert!(
        (1..=4u64).any(|c| go(Some(c)) != base),
        "four chaos seeds produced schedules identical to the chaos-free run"
    );
}

#[test]
fn naked_notify_window_stays_closed_under_chaos() {
    // The satellite regression riding on the soak matrix: the classic
    // wait/notify gate under 16 seeds of combined perturbation + chaos.
    // Spurious wakeups re-test the predicate; delayed wakes arrive late
    // but never vanish. A lost wakeup would stall and fail the cell.
    for seed in 0..16u64 {
        for kind in [SchedKind::Fifo, SchedKind::Ws] {
            let cfg = Config::new(2, kind)
                .with_perturbation(seed)
                .with_chaos(seed + 100);
            let (v, done) = cell(cfg, || {
                let gate = Mutex::new(false);
                let cv = Condvar::new();
                let (gate2, cv2) = (gate.clone(), cv.clone());
                let waiter = spawn(move || {
                    let mut g = gate2.lock();
                    while !*g {
                        g = cv2.wait(g);
                    }
                    true
                });
                ptdf::work(50_000);
                *gate.lock() = true;
                cv.notify_one();
                waiter.join()
            });
            assert_eq!(v, Verdict::Completed, "seed {seed} {kind:?}");
            assert!(done, "seed {seed} {kind:?}");
        }
    }
}
