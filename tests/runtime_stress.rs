//! Property-based stress tests of the runtime: random fork/join/mutex
//! workloads must produce correct results, terminate, and respect the
//! scheduler space disciplines, under every policy and processor count.

use proptest::prelude::*;
use ptdf::{Config, Mutex, SchedKind, Semaphore};

/// A deterministic "random" recursive workload driven by a seed: forks a
/// data-dependent number of children, does work, touches a mutex-protected
/// counter, and returns a checksum.
fn chaos(seed: u64, depth: u32, counter: &Mutex<u64>) -> u64 {
    let mut x = seed;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    ptdf::work(next() % 5_000);
    {
        let mut g = counter.lock();
        *g += 1;
    }
    if depth == 0 {
        return seed % 97;
    }
    let kids = next() % 3;
    let handles: Vec<_> = (0..kids)
        .map(|i| {
            let counter = counter.clone();
            let s = next().wrapping_add(i);
            ptdf::spawn(move || chaos(s, depth - 1, &counter))
        })
        .collect();
    let mut acc = seed % 97;
    for h in handles {
        acc = acc.wrapping_mul(31).wrapping_add(h.join());
    }
    acc
}

fn count_nodes(seed: u64, depth: u32) -> u64 {
    let mut x = seed;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let _ = next() % 5_000;
    if depth == 0 {
        return 1;
    }
    let kids = next() % 3;
    1 + (0..kids)
        .map(|i| count_nodes(next().wrapping_add(i), depth - 1))
        .sum::<u64>()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn chaos_workload_is_scheduler_invariant(seed in 1u64..u64::MAX, procs in 1usize..9) {
        let depth = 5;
        let expected_nodes = count_nodes(seed, depth);
        let mut checksums = Vec::new();
        for kind in [SchedKind::Fifo, SchedKind::Lifo, SchedKind::Df, SchedKind::Ws] {
            let (out, report) = ptdf::run(Config::new(procs, kind), move || {
                let counter = Mutex::new(0u64);
                let sum = chaos(seed, depth, &counter);
                let hits = *counter.lock();
                (sum, hits)
            });
            prop_assert_eq!(out.1, expected_nodes, "{:?}: mutex hit count", kind);
            prop_assert_eq!(report.total_threads as u64, expected_nodes, "{:?}", kind);
            checksums.push(out.0);
        }
        // All schedulers compute the same checksum.
        prop_assert!(checksums.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn chaos_is_invariant_under_perturbation(
        seed in 1u64..u64::MAX,
        pseed in 0u64..u64::MAX,
        procs in 1usize..9,
    ) {
        // Schedule perturbation (jittered sync costs, shuffled wakes,
        // randomized tie-breaks) must never change what the program
        // computes — only when. Compare a perturbed cell against the
        // deterministic baseline of the same policy.
        let depth = 4;
        let expected_nodes = count_nodes(seed, depth);
        let quick = std::env::var_os("REPRO_QUICK").is_some();
        let kinds: &[SchedKind] = if quick {
            &[SchedKind::Df, SchedKind::Ws]
        } else {
            &[SchedKind::Fifo, SchedKind::Lifo, SchedKind::Df, SchedKind::DfDeques, SchedKind::Ws]
        };
        for &kind in kinds {
            let body = move || {
                let counter = Mutex::new(0u64);
                let sum = chaos(seed, depth, &counter);
                let hits = *counter.lock();
                (sum, hits)
            };
            let (base, _) = ptdf::run(Config::new(procs, kind), body);
            let cfg = Config::new(procs, kind).with_perturbation(pseed);
            let (pert, report) = ptdf::run(cfg, body);
            prop_assert_eq!(pert.1, expected_nodes, "{:?} pseed {}: hit count", kind, pseed);
            prop_assert_eq!(pert.0, base.0, "{:?} pseed {}: checksum drifted", kind, pseed);
            prop_assert_eq!(report.total_threads as u64, expected_nodes, "{:?}", kind);
        }
    }

    #[test]
    fn df_space_discipline_under_chaos(seed in 1u64..u64::MAX) {
        let depth = 6;
        let (_, fifo) = ptdf::run(Config::new(4, SchedKind::Fifo), move || {
            let counter = Mutex::new(0u64);
            chaos(seed, depth, &counter)
        });
        let (_, df) = ptdf::run(Config::new(4, SchedKind::Df), move || {
            let counter = Mutex::new(0u64);
            chaos(seed, depth, &counter)
        });
        // DF keeps roughly one path per processor: depth+1 threads per proc
        // plus in-flight slack — its absolute S1 + O(p·D)-style bound.
        prop_assert!(
            df.max_live_threads() <= 4 * (depth as u64 + 2) + 4,
            "df {} exceeds p*(D+2)+p", df.max_live_threads()
        );
        // The comparative claim (DF ≪ FIFO) only holds when the graph is
        // wide enough for breadth-first execution to actually explode; for
        // narrow, chain-like graphs FIFO's live count can legitimately sit
        // below DF's p-paths. Compare only in the wide regime.
        if fifo.max_live_threads() > 4 * (depth as u64 + 2) + 4 {
            prop_assert!(
                df.max_live_threads() < fifo.max_live_threads(),
                "df {} vs fifo {}", df.max_live_threads(), fifo.max_live_threads()
            );
        }
    }

    #[test]
    fn semaphore_pipeline_delivers_everything(stages in 2usize..6, items in 1u64..40) {
        let (received, _) = ptdf::run(Config::new(4, SchedKind::Df), move || {
            // A chain of semaphore-linked stages, each forwarding `items`
            // tokens to the next.
            let sems: Vec<Semaphore> = (0..stages).map(|_| Semaphore::new(0)).collect();
            let done = Semaphore::new(0);
            ptdf::scope(|s| {
                for i in 0..stages {
                    let input = sems[i].clone();
                    let output = if i + 1 < stages {
                        sems[i + 1].clone()
                    } else {
                        done.clone()
                    };
                    s.spawn(move || {
                        for _ in 0..items {
                            input.acquire();
                            ptdf::work(500);
                            output.release();
                        }
                    });
                }
                // Feed the pipeline.
                for _ in 0..items {
                    sems[0].release();
                }
                // Drain the output.
                let mut got = 0;
                for _ in 0..items {
                    done.acquire();
                    got += 1;
                }
                got
            })
        });
        prop_assert_eq!(received, items);
    }

    #[test]
    fn quota_sweep_never_changes_results(k_log2 in 10u32..24) {
        let quota = 1u64 << k_log2;
        let (v, report) = ptdf::run(
            Config::new(3, SchedKind::Df).with_quota(quota),
            move || {
                let hs: Vec<_> = (0..8)
                    .map(|i| {
                        ptdf::spawn(move || {
                            ptdf::rt_alloc(100_000);
                            ptdf::work(10_000);
                            ptdf::rt_free(100_000);
                            i * 2
                        })
                    })
                    .collect();
                hs.into_iter().map(|h| h.join()).sum::<u64>()
            },
        );
        prop_assert_eq!(v, 56);
        // Dummies are inserted exactly when an allocation exceeds K.
        if quota >= 100_000 {
            prop_assert_eq!(report.stats.mem.dummy_threads, 0);
        } else {
            prop_assert!(report.stats.mem.dummy_threads > 0);
        }
    }
}

#[test]
fn deep_fork_chain_does_not_overflow_fiber_stacks() {
    // A 400-deep chain of forks: each level spawns one child and waits.
    fn chain(depth: u32) -> u32 {
        if depth == 0 {
            return 0;
        }
        ptdf::spawn(move || chain(depth - 1)).join() + 1
    }
    let (v, report) = ptdf::run(Config::new(2, SchedKind::Df), || chain(400));
    assert_eq!(v, 400);
    assert_eq!(report.total_threads, 401);
}

#[test]
fn priority_inversion_free_ordering() {
    // High-priority threads run before low-priority ones that were queued
    // earlier (single proc ⇒ strict ordering observable).
    let (order, _) = ptdf::run(Config::new(1, SchedKind::Df), || {
        let log = Mutex::new(Vec::new());
        let mut handles = Vec::new();
        for (prio, tag) in [(1, 'a'), (3, 'b'), (2, 'c'), (3, 'd')] {
            let log = log.clone();
            handles.push(ptdf::spawn_attr(
                ptdf::Attr::default().priority(prio),
                move || log.lock().push(tag),
            ));
        }
        for h in handles {
            h.join();
        }
        let v = log.lock().clone();
        v
    });
    assert_eq!(order, vec!['b', 'd', 'c', 'a']);
}
