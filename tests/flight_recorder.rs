//! Integration tests for the flight recorder: exact agreement between the
//! trace's counter tracks and the machine's memory statistics, lifecycle
//! consistency, and the Chrome/Perfetto export's acceptance shape
//! (spans + event kinds + counter tracks) — across all scheduler policies.

use ptdf::{json, Config, Report, SchedKind};

const ALL_KINDS: [SchedKind; 5] = [
    SchedKind::Fifo,
    SchedKind::Lifo,
    SchedKind::Df,
    SchedKind::DfDeques,
    SchedKind::Ws,
];

/// A fork tree with tracked leaf allocations: enough churn to move every
/// counter track and (for the deque policies) trigger steals.
fn traced_run(kind: SchedKind) -> Report {
    let cfg = Config::new(4, kind).with_trace();
    let (_, report) = ptdf::run(cfg, || fork_tree(4));
    report
}

fn fork_tree(depth: u32) {
    if depth == 0 {
        ptdf::rt_alloc(32 * 1024);
        ptdf::work(5_000);
        ptdf::rt_free(32 * 1024);
        return;
    }
    let left = ptdf::spawn(move || fork_tree(depth - 1));
    fork_tree(depth - 1);
    left.join();
}

/// The footprint counter track is sampled inside the machine at every
/// change, so its maximum must equal `MemStats::footprint_hwm` bit-exactly
/// (and the Report accessor), for every scheduler.
#[test]
fn footprint_track_max_equals_hwm_exactly() {
    for kind in ALL_KINDS {
        let report = traced_run(kind);
        let trace = report.trace.as_ref().expect("tracing enabled");
        assert_eq!(
            trace.footprint_hwm(),
            report.stats.mem.footprint_hwm,
            "{kind:?}: footprint track max must equal the machine hwm"
        );
        assert_eq!(trace.footprint_hwm(), report.footprint(), "{kind:?}");
        assert!(trace.footprint_hwm() > 0, "{kind:?}: track must move");
    }
}

/// Same exactness for the live-thread track vs `live_threads_hwm`.
#[test]
fn live_thread_track_max_equals_hwm_exactly() {
    for kind in ALL_KINDS {
        let report = traced_run(kind);
        let trace = report.trace.as_ref().expect("tracing enabled");
        assert_eq!(
            trace.max_live_threads(),
            report.stats.mem.live_threads_hwm,
            "{kind:?}: live-thread track max must equal the machine hwm"
        );
        assert!(trace.max_live_threads() >= 2, "{kind:?}: tree must overlap");
    }
}

/// Per-thread lifecycle records stay inside the run: dispatch after spawn,
/// exit after dispatch, ready-wait bounded by the makespan, and the quanta
/// total matching the machine's dispatch count.
#[test]
fn lifecycle_is_consistent_across_schedulers() {
    for kind in ALL_KINDS {
        let report = traced_run(kind);
        let trace = report.trace.as_ref().expect("tracing enabled");
        trace.validate().unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        let makespan = report.makespan();
        for t in &trace.threads {
            if let Some(fd) = t.first_dispatch {
                assert!(fd >= t.spawned, "{kind:?} t{}: dispatch before spawn", t.thread);
            }
            assert!(
                t.ready_wait <= makespan,
                "{kind:?} t{}: ready-wait {} exceeds makespan {makespan}",
                t.thread,
                t.ready_wait
            );
        }
        let lc = trace.lifecycle();
        assert_eq!(lc.threads as usize, trace.threads.len(), "{kind:?}");
        let quanta: u64 = trace.threads.iter().map(|t| t.quanta).sum();
        assert_eq!(lc.total_quanta, quanta, "{kind:?}");
        // At any instant, at most live_threads_hwm threads can be waiting
        // ready, so the summed ready-wait integrates to at most hwm×makespan.
        let total_wait: u64 = trace.threads.iter().map(|t| t.ready_wait.as_ns()).sum();
        assert!(
            total_wait <= trace.max_live_threads() * makespan.as_ns(),
            "{kind:?}: total ready-wait {total_wait} vs bound"
        );
    }
}

/// Acceptance shape of the export: parses as JSON, has phase-X span records,
/// at least 6 distinct instant event kinds (over a workload that blocks and
/// allocates), and at least 3 counter tracks.
#[test]
fn chrome_export_has_spans_events_and_counter_tracks() {
    let cfg = Config::new(4, SchedKind::Df).with_trace().with_quota(16 * 1024);
    let (_, report) = ptdf::run(cfg, || {
        let m = ptdf::Mutex::new(0u64);
        let b = ptdf::Barrier::new(2);
        let (m2, b2) = (m.clone(), b.clone());
        let h = ptdf::spawn(move || {
            *m2.lock() += 1;
            ptdf::work(10_000);
            b2.wait();
        });
        fork_tree(3);
        ptdf::rt_alloc(64 * 1024); // > K: dummies + preempt
        ptdf::rt_free(64 * 1024);
        b.wait();
        *m.lock() += 1;
        h.join();
    });
    let text = report.trace.as_ref().unwrap().to_chrome_json();
    let doc = json::Value::parse(&text).expect("export must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");

    let ph_of = |e: &json::Value| e.get("ph").and_then(|v| v.as_str()).unwrap_or("").to_string();
    let spans = events.iter().filter(|e| ph_of(e) == "X").count();
    assert!(spans > 0, "export needs span records");

    let mut kinds: Vec<String> = events
        .iter()
        .filter(|e| ph_of(e) == "i")
        .filter_map(|e| e.get("name").and_then(|v| v.as_str()).map(str::to_string))
        .collect();
    kinds.sort();
    kinds.dedup();
    assert!(
        kinds.len() >= 6,
        "acceptance: >= 6 event kinds, got {kinds:?}"
    );

    let mut tracks: Vec<String> = events
        .iter()
        .filter(|e| ph_of(e) == "C")
        .filter_map(|e| e.get("name").and_then(|v| v.as_str()).map(str::to_string))
        .collect();
    tracks.sort();
    tracks.dedup();
    assert!(
        tracks.len() >= 3,
        "acceptance: >= 3 counter tracks, got {tracks:?}"
    );
}

/// Work-stealing policies label steal events with a victim processor.
#[test]
fn deque_policies_trace_steals_with_victims() {
    for kind in [SchedKind::Ws, SchedKind::DfDeques] {
        let report = traced_run(kind);
        let trace = report.trace.as_ref().expect("tracing enabled");
        let steals = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, ptdf::EventKind::Steal { .. }))
            .count() as u64;
        assert_eq!(steals, report.steals, "{kind:?}: one event per steal");
    }
}

/// Tracing is opt-in: without `with_trace` the report carries no trace.
#[test]
fn tracing_off_means_no_trace() {
    let (_, report) = ptdf::run(Config::new(2, SchedKind::Df), || fork_tree(2));
    assert!(report.trace.is_none());
}
