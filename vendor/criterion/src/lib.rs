//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's
//! micro-benchmarks use — `criterion_group!`/`criterion_main!`,
//! `benchmark_group`, `bench_function`, `Bencher::{iter, iter_batched,
//! iter_batched_ref}` — with a plain wall-clock measurement loop instead of
//! criterion's statistical machinery: warm up briefly, then time enough
//! iterations to fill a measurement window and report mean ns/iter.
//!
//! Honors `CRITERION_QUICK=1` to shrink the windows (used by CI smoke).

use std::time::{Duration, Instant};

fn window() -> (Duration, Duration) {
    if std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1") {
        (Duration::from_millis(5), Duration::from_millis(20))
    } else {
        (Duration::from_millis(100), Duration::from_millis(400))
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into(), &mut f);
        self
    }
}

/// A named group of benchmarks (prefixes the reported ids).
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted and ignored (the stand-in sizes runs by wall-clock window).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into()), &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, f: &mut F) {
    let (warm, measure) = window();
    // Warm-up pass.
    let mut b = Bencher {
        deadline: Instant::now() + warm,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    // Measurement pass.
    let mut b = Bencher {
        deadline: Instant::now() + measure,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.elapsed.as_nanos() as f64 / b.iters as f64
    } else {
        f64::NAN
    };
    println!("bench {id:50} {per_iter:14.1} ns/iter  ({} iters)", b.iters);
}

/// Batch sizing hints; accepted and ignored.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing loop handle passed to the benchmark closure.
pub struct Bencher {
    deadline: Instant,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly until the measurement window closes.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        loop {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if Instant::now() >= self.deadline {
                break;
            }
        }
    }

    /// Times `routine` over fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        loop {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if Instant::now() >= self.deadline {
                break;
            }
        }
    }

    /// Like [`Bencher::iter_batched`] but passes the input by `&mut`.
    pub fn iter_batched_ref<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> R,
    {
        loop {
            let mut input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(&mut input));
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if Instant::now() >= self.deadline {
                break;
            }
        }
    }
}

/// Collects benchmark functions into one runner fn, like upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_counts_and_times() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(10).bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched_ref(|| vec![1u8; 16], |v| v[0], BatchSize::SmallInput)
        });
        g.finish();
    }
}
