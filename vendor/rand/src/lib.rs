//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small deterministic subset it actually uses: `SmallRng`
//! seeded from a `u64`, uniform integer ranges, and `gen_bool`. The stream
//! differs from upstream `rand` (it is sfc64-based), which is fine — every
//! consumer in this workspace only relies on *self*-determinism (same seed,
//! same stream), never on matching upstream's values.

pub mod rngs {
    /// A small, fast, deterministic RNG (sfc64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        a: u64,
        b: u64,
        c: u64,
        counter: u64,
    }

    impl SmallRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            let mut rng = SmallRng {
                a: seed,
                b: seed ^ 0x9E3779B97F4A7C15,
                c: seed.wrapping_mul(0x2545F4914F6CDD1D) | 1,
                counter: 1,
            };
            // Warm up so near-identical seeds diverge.
            for _ in 0..12 {
                rng.next_u64();
            }
            rng
        }

        pub(crate) fn next_u64(&mut self) -> u64 {
            let out = self.a.wrapping_add(self.b).wrapping_add(self.counter);
            self.counter = self.counter.wrapping_add(1);
            self.a = self.b ^ (self.b >> 11);
            self.b = self.c.wrapping_add(self.c << 3);
            self.c = self.c.rotate_left(24).wrapping_add(out);
            out
        }
    }
}

/// Seedable constructors (the subset of `rand::SeedableRng` used here).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::SmallRng::from_u64_seed(seed)
    }
}

/// A range a uniform sample can be drawn from (half-open or inclusive
/// integer ranges).
pub trait SampleRange<T> {
    fn sample(self, rng: &mut rngs::SmallRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut rngs::SmallRng) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut rngs::SmallRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut rngs::SmallRng) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $u as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut rngs::SmallRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = hi.wrapping_sub(lo) as $u as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $u as $t)
            }
        }
    )*};
}

impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Sampling methods (the subset of `rand::Rng` used here).
pub trait Rng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for rngs::SmallRng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 bits of precision, like upstream.
        let x = self.next_u64() >> 11;
        (x as f64) < p * (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_range(5u64..10);
            assert!((5..10).contains(&x));
            let y = r.gen_range(1usize..=3);
            assert!((1..=3).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2000..4000).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
