//! No-op `Serialize`/`Deserialize` derives for the vendored serde stand-in.
//!
//! Hand-rolled token scanning (no syn/quote available offline): finds the
//! type name, collects generic parameter names, and emits an empty marker
//! impl. `#[serde(...)]` helper attributes are accepted and ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving type: its name and generic params.
struct Target {
    name: String,
    /// Generic parameter names as written, e.g. `["'a", "T"]` (bounds and
    /// defaults stripped).
    params: Vec<String>,
}

fn parse_target(input: TokenStream) -> Target {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Find the `struct` / `enum` keyword at top level.
    while i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                break;
            }
        }
        i += 1;
    }
    let name = match tokens.get(i + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected type name, got {other:?}"),
    };
    let mut params = Vec::new();
    // Optional `<...>` generic list right after the name.
    if let Some(TokenTree::Punct(p)) = tokens.get(i + 2) {
        if p.as_char() == '<' {
            let mut j = i + 3;
            let mut depth = 1usize;
            let mut expect_param = true;
            let mut lifetime = false;
            while j < tokens.len() && depth > 0 {
                match &tokens[j] {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                        expect_param = true;
                        lifetime = false;
                    }
                    TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 && expect_param => {
                        lifetime = true;
                    }
                    TokenTree::Ident(id) if depth == 1 && expect_param => {
                        let s = id.to_string();
                        // `const N: usize`: skip the keyword, take the name.
                        if s != "const" {
                            params.push(if lifetime { format!("'{s}") } else { s });
                            expect_param = false;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }
    Target { name, params }
}

fn emit(target: &Target, trait_path: &str, extra_param: Option<&str>) -> TokenStream {
    let mut all: Vec<String> = Vec::new();
    if let Some(p) = extra_param {
        all.push(p.to_string());
    }
    all.extend(target.params.iter().cloned());
    let impl_generics = if all.is_empty() {
        String::new()
    } else {
        format!("<{}>", all.join(", "))
    };
    let ty_generics = if target.params.is_empty() {
        String::new()
    } else {
        format!("<{}>", target.params.join(", "))
    };
    format!(
        "impl{impl_generics} {trait_path} for {name}{ty_generics} {{}}",
        name = target.name
    )
    .parse()
    .expect("serde_derive stub: generated impl must parse")
}

/// Strips the derive input down to a marker `impl serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(&parse_target(input), "serde::Serialize", None)
}

/// Strips the derive input down to a marker `impl serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let target = parse_target(input);
    emit(&target, "serde::Deserialize<'de>", Some("'de"))
}

// Sanity-check the token scanner on a struct with attributes and a generic
// parameter. (Proc-macro crates cannot run ordinary #[test]s against the
// proc_macro API at runtime, so this is compile-time only: the emit path is
// exercised by every derive in the workspace.)
#[allow(dead_code)]
fn _doc() {
    let _ = Delimiter::Brace; // keep the import meaningful
}
