//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the proptest surface the workspace's property tests use:
//!
//! * the `proptest!` macro (optional `#![proptest_config(...)]` header,
//!   `fn name(pat in strategy, ...)` test items),
//! * integer range strategies, `any::<T>()`, tuple strategies, and
//!   `proptest::collection::vec`,
//! * `prop_assert!` / `prop_assert_eq!`,
//! * `ProptestConfig::with_cases`.
//!
//! Differences from upstream: cases are generated from a fixed seed
//! sequence (fully deterministic, no `.proptest-regressions` persistence)
//! and failures are reported without shrinking — the failing case index and
//! the generated inputs are printed instead.

/// Deterministic case-generation RNG (sfc64, same family as the vendored
/// `rand` stand-in but independent of it).
#[derive(Debug, Clone)]
pub struct TestRng {
    a: u64,
    b: u64,
    c: u64,
    counter: u64,
}

impl TestRng {
    /// Per-case RNG: `seed` mixes the test name hash and the case index.
    pub fn new(seed: u64) -> Self {
        let mut rng = TestRng {
            a: seed,
            b: seed ^ 0xD1B54A32D192ED03,
            c: seed.wrapping_mul(0x9E3779B97F4A7C15) | 1,
            counter: 1,
        };
        for _ in 0..12 {
            rng.next_u64();
        }
        rng
    }

    pub fn next_u64(&mut self) -> u64 {
        let out = self.a.wrapping_add(self.b).wrapping_add(self.counter);
        self.counter = self.counter.wrapping_add(1);
        self.a = self.b ^ (self.b >> 11);
        self.b = self.c.wrapping_add(self.c << 3);
        self.c = self.c.rotate_left(24).wrapping_add(out);
        out
    }
}

/// A value generator. Upstream proptest separates strategies from value
/// trees (for shrinking); without shrinking a strategy is just a generator.
pub trait Strategy {
    type Value: std::fmt::Debug;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// `any::<T>()` strategy for primitives.
pub struct Any<T>(core::marker::PhantomData<T>);

/// Full-domain strategy for a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Types `any::<T>()` can generate.
pub trait Arbitrary: Sized + std::fmt::Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::{Strategy, TestRng};

    /// Length-range + element-strategy vector generator.
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// `proptest::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Runner configuration.

    /// The subset of upstream's `ProptestConfig` used here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; these tests drive a whole simulated
            // runtime per case, so keep the default moderate.
            ProptestConfig { cases: 64 }
        }
    }
}

/// FNV-1a hash of the test name, used to decorrelate the seed streams of
/// different tests.
pub fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Defines deterministic randomized tests. See module docs for the
/// differences from upstream.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let base = $crate::name_seed(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::new(base ^ case.wrapping_mul(0x9E3779B97F4A7C15));
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    $(let $arg = $arg.clone();)+
                    $body
                }));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest stand-in: {} failed at case {case}/{}",
                        stringify!($name),
                        config.cases
                    );
                    $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                    std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Panic-based stand-in for upstream's `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Panic-based stand-in for upstream's `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Panic-based stand-in for upstream's `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude::*`.
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, v in crate::collection::vec((0u32..5, 1u64..9), 1..20)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 5);
                prop_assert!((1..9).contains(&b));
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(flag in any::<bool>(), n in 0usize..4) {
            let _ = flag;
            prop_assert!(n < 4);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::new(1);
        let mut b = crate::TestRng::new(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
