//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access. The workspace only uses
//! `#[derive(serde::Serialize)]` as a marker (no code path serializes yet),
//! so this crate provides the `Serialize`/`Deserialize` traits and a no-op
//! derive that accepts `#[serde(...)]` helper attributes. If a future PR
//! needs real serialization, extend the derive in `vendor/serde_derive` to
//! emit field-walking code.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
