//! Deadlock sentinel demo: run a three-thread lock cycle, let the waits-for
//! detector name it, and write the flight-recorder trace for the companion
//! CLI to flag.
//!
//! Run with: `cargo run --release --example deadlock_trace`
//!
//! The trace lands in `target/traces/trace_deadlock.json`; check it with
//! `cargo run --release -p ptdf-trace-tools --bin ptdf-trace -- check target/traces/trace_deadlock.json`
//! which exits 1 and prints the cycle — the same membership reported here
//! through [`ptdf::Report::deadlocks`].

use ptdf::{spawn, try_run, Config, Mutex, SchedKind};

fn main() {
    let cfg = Config::new(3, SchedKind::Df).with_trace().with_perturbation(9);
    // One member is *expected* to unwind with DeadlockError; keep the
    // default hook from spraying its backtrace over the demo output.
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = try_run(cfg, || {
        // Three locks acquired in a ring: t1 holds a wants b, t2 holds b
        // wants c, t3 holds c wants a. The holds exceed the 200 µs
        // interleaving quantum so all three demonstrably interlock.
        let locks = [Mutex::new(()), Mutex::new(()), Mutex::new(())];
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let first = locks[i].clone();
                let second = locks[(i + 1) % 3].clone();
                spawn(move || {
                    let _g1 = first.lock();
                    ptdf::work(300_000);
                    let _g2 = second.lock();
                })
            })
            .collect();
        // The member that closes the cycle unwinds with DeadlockError;
        // absorb it so the run itself completes with a verdict.
        handles
            .into_iter()
            .map(|h| h.try_join().is_err() as u32)
            .sum::<u32>()
    });
    let _ = std::panic::take_hook();
    let (unwound, report) = outcome.expect("a detected deadlock is a verdict, not a stall");
    assert_eq!(unwound, 1, "exactly one member unwinds with DeadlockError");
    let deadlocks = report.deadlocks();
    assert_eq!(deadlocks.len(), 1, "one cycle expected");
    println!("runtime verdict: {}", deadlocks[0]);
    let mut members = deadlocks[0].cycle.clone();
    members.sort_unstable();
    println!("cycle members (sorted): {members:?}");

    let dir = std::path::Path::new("target/traces");
    std::fs::create_dir_all(dir).expect("create target/traces");
    let path = dir.join("trace_deadlock.json");
    let trace = report.trace.expect("tracing enabled");
    std::fs::write(&path, trace.to_chrome_json()).expect("write trace");
    println!(
        "wrote {} ({} events) — `ptdf-trace check` on it exits 1 and names the cycle",
        path.display(),
        trace.events.len()
    );
}
