//! Quickstart: dynamic, irregular parallelism with `ptdf`.
//!
//! Computes the number of nodes in a random unbalanced tree two ways —
//! serially, and by forking a lightweight thread per subtree (the paper's
//! "one thread per parallel task" style) — then prints what the runtime
//! observed under two schedulers.
//!
//! Run with: `cargo run --release --example quickstart`

use ptdf::{run, run_serial, spawn, Config, CostModel, SchedKind};

/// Counts nodes of an imaginary unbalanced tree: each node has a
/// data-dependent number of children — the kind of irregular recursion
/// that static partitioning handles badly and dynamic threads handle
/// naturally.
fn count(seed: u64, depth: u32) -> u64 {
    ptdf::work(50_000); // this node's own "work": 50k cycles
    if depth == 0 {
        return 1;
    }
    let children = (seed % 4) as u32; // 0..=3 children, data dependent
    let handles: Vec<_> = (0..children)
        .map(|i| {
            let child_seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(i as u64 + 1);
            spawn(move || count(child_seed, depth - 1))
        })
        .collect();
    1 + handles.into_iter().map(|h| h.join()).sum::<u64>()
}

fn main() {
    // Serial baseline: same code, forks become function calls.
    let (total, serial) = run_serial(CostModel::ultrasparc_167(), || count(0xFEED, 12));
    println!("tree nodes           : {total}");
    println!("serial time          : {}", serial.time);

    for sched in [SchedKind::Fifo, SchedKind::Df] {
        let (par_total, report) = run(Config::new(8, sched), move || count(0xFEED, 12));
        assert_eq!(par_total, total, "parallel result must match serial");
        println!(
            "{:4} on 8 procs      : {} ({:.2}x speedup), peak {} live threads of {} created, peak memory {:.2} KB",
            report.scheduler,
            report.makespan(),
            report.speedup_vs(serial.time),
            report.max_live_threads(),
            report.total_threads,
            report.footprint() as f64 / 1024.0,
        );
    }
    println!(
        "\nThe FIFO scheduler (stock Solaris) keeps far more threads live than\n\
         the space-efficient depth-first scheduler — the paper's core point."
    );
}
