//! Volume rendering: build the synthetic CT-head phantom, render it with a
//! thread per tile group under the space-efficient scheduler, and write the
//! image as `head.pgm` (viewable with any image viewer).
//!
//! Run with: `cargo run --release --example render [size] [image]`

use ptdf::{run, Config, SchedKind};
use ptdf_apps::volren::{self, Params};

fn main() {
    let size: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(128);
    let image: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(256);
    let prm = Params {
        size,
        image,
        ..Params::small()
    };
    println!("building {size}^3 phantom ...");
    let vol = volren::gen_volume(size);
    println!(
        "rendering {image}x{image} ({} tiles, {} tiles/thread) ...",
        prm.total_tiles(),
        prm.tiles_per_thread
    );
    let (img, report) = run(Config::new(8, SchedKind::Df), {
        let vol = vol.clone();
        move || volren::render_fine(&vol, &prm)
    });
    let pgm = volren::to_pgm(&img, image);
    std::fs::write("head.pgm", pgm).expect("write head.pgm");
    println!(
        "wrote head.pgm — {} threads, virtual render time {}",
        report.total_threads,
        report.makespan()
    );
    // Quick ASCII preview.
    println!();
    for py in (0..image).step_by((image / 24).max(1)) {
        let line: String = (0..image)
            .step_by((image / 60).max(1))
            .map(|px| {
                let v = img[py * image + px];
                b" .:-=+*#%@"[(v as usize * 9 / 256).min(9)] as char
            })
            .collect();
        println!("{line}");
    }
}
