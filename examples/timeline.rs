//! Execution-trace visualization: run the divide-and-conquer matmul under
//! two schedulers with the flight recorder enabled and write Chrome-trace
//! JSON files (open in `chrome://tracing` or https://ui.perfetto.dev)
//! showing how each policy places threads on the virtual processors, plus
//! the counter tracks (footprint, live threads, ready queue).
//!
//! Run with: `cargo run --release --example timeline`
//!
//! Traces land in `target/traces/`; inspect them with the companion CLI:
//! `cargo run --release -p ptdf-trace-tools --bin ptdf-trace -- summarize target/traces/trace_df.json`

use ptdf::{Config, SchedKind};
use ptdf_apps::matmul;

fn main() {
    let p = matmul::Params {
        n: 256,
        base: 64,
        seed: 42,
    };
    let (a, b) = matmul::gen_input(&p);
    let dir = std::path::Path::new("target/traces");
    std::fs::create_dir_all(dir).expect("create target/traces");
    for kind in [SchedKind::Fifo, SchedKind::Df] {
        let (_, report) = ptdf::run(Config::new(4, kind).with_trace(), {
            let (a, b) = (a.clone(), b.clone());
            move || matmul::multiply(&a, &b, &p)
        });
        let trace = report.trace.as_ref().expect("tracing enabled");
        let path = dir.join(format!("trace_{}.json", report.scheduler));
        std::fs::write(&path, trace.to_chrome_json()).expect("write trace");
        println!(
            "{:>5}: {} spans, {} events over {} — wrote {}",
            report.scheduler,
            trace.len(),
            trace.events.len(),
            report.makespan(),
            path.display(),
        );
        // Quick ASCII utilization summary.
        for (proc, busy) in trace.busy_per_proc(report.processors).iter().enumerate() {
            let frac = busy.as_ns() as f64 / report.makespan().as_ns().max(1) as f64;
            let bar = "#".repeat((frac * 40.0) as usize);
            println!("        cpu{proc}: {bar:<40} {:.0}%", frac * 100.0);
        }
        // Lifecycle digest from the recorder.
        let lc = report.lifecycle().expect("tracing enabled");
        println!(
            "        {} threads, {} quanta; dispatch latency p50 {} p99 {}; footprint hwm {} B",
            lc.threads,
            lc.total_quanta,
            lc.dispatch_latency.p50,
            lc.dispatch_latency.p99,
            trace.footprint_hwm(),
        );
    }
    println!("\nLoad either file in chrome://tracing or ui.perfetto.dev.");
}
