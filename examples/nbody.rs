//! Barnes-Hut N-body simulation, end to end: sample a Plummer sphere,
//! simulate a few timesteps with one thread per octree subtree, and report
//! physics sanity plus scheduler statistics.
//!
//! Run with: `cargo run --release --example nbody [n_bodies]`

use ptdf::{run, run_serial, Config, CostModel, SchedKind};
use ptdf_apps::barnes_hut::{self, Params};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8_000);
    let prm = Params {
        n_bodies: n,
        timesteps: 3,
        ..Params::small()
    };
    println!("sampling {n} bodies from the Plummer model ...");
    let bodies = barnes_hut::plummer(n, 42);

    let (_, serial) = run_serial(CostModel::ultrasparc_167(), {
        let mut b = bodies.clone();
        move || barnes_hut::run_fine(&mut b, &prm)
    });
    println!("serial: {}", serial.time);

    let (final_bodies, report) = run(Config::new(8, SchedKind::Df), {
        let mut b = bodies.clone();
        move || {
            barnes_hut::run_fine(&mut b, &prm);
            b
        }
    });
    let momentum: [f64; 3] = final_bodies.iter().fold([0.0; 3], |acc, b| {
        [
            acc[0] + b.mass * b.vel[0],
            acc[1] + b.mass * b.vel[1],
            acc[2] + b.mass * b.vel[2],
        ]
    });
    println!(
        "parallel (8 procs, df): {} — speedup {:.2}x",
        report.makespan(),
        report.speedup_vs(serial.time)
    );
    println!(
        "threads: {} created, peak {} live; memory peak {:.2} MB",
        report.total_threads,
        report.max_live_threads(),
        report.footprint() as f64 / (1024.0 * 1024.0)
    );
    println!(
        "total momentum after {} steps: [{:+.2e} {:+.2e} {:+.2e}] (≈0 expected)",
        prm.timesteps, momentum[0], momentum[1], momentum[2]
    );
}
