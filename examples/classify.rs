//! Decision-tree classifier: generate the synthetic dataset, build the tree
//! in parallel (a thread per recursive call, plus parallel quicksorts), and
//! evaluate training accuracy.
//!
//! Run with: `cargo run --release --example classify [instances]`

use ptdf::{run, Config, SchedKind};
use ptdf_apps::dtree::{self, Params};

fn main() {
    let instances: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30_000);
    let prm = Params {
        instances,
        ..Params::small()
    };
    println!(
        "generating {instances} instances x {} attributes ...",
        prm.attrs
    );
    let ds = dtree::gen_dataset(&prm);

    let (tree, report) = run(Config::new(8, SchedKind::Df), {
        let ds = ds.clone();
        move || dtree::build(&ds, &prm)
    });
    println!(
        "built tree: {} nodes, depth {}, in virtual {}",
        tree.size(),
        tree.depth(),
        report.makespan()
    );
    println!(
        "threads: {} created, peak {} live; peak memory {:.2} MB",
        report.total_threads,
        report.max_live_threads(),
        report.footprint() as f64 / (1024.0 * 1024.0)
    );
    let acc = dtree::accuracy(&tree, &ds);
    println!("training accuracy: {:.1}%", acc * 100.0);
    // Classify a few examples.
    for i in [0usize, 1, 2] {
        let row = &ds.x[i * ds.attrs..(i + 1) * ds.attrs];
        println!(
            "instance {i}: attrs {row:.2?} → predicted {}, actual {}",
            tree.classify(row),
            ds.y[i]
        );
    }
}
