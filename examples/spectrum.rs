//! FFT spectrum analysis: synthesize a signal with known tones, transform
//! it with the thread-parallel Cooley-Tukey DFT, and locate the peaks.
//!
//! Run with: `cargo run --release --example spectrum`

use ptdf::{run, Config, SchedKind};
use ptdf_apps::fft::{self, Cpx, Params};

fn main() {
    let log2n = 16u32;
    let n = 1usize << log2n;
    let prm = Params {
        log2n,
        threads: 64,
        seed: 0,
    };
    // Two tones + noise.
    let tones = [(1234usize, 1.0f64), (20_000usize, 0.5f64)];
    let mut sig = vec![Cpx::default(); n];
    let mut state = 7u64;
    for (i, s) in sig.iter_mut().enumerate() {
        let mut v = 0.0;
        for &(f, a) in &tones {
            v += a * (2.0 * std::f64::consts::PI * f as f64 * i as f64 / n as f64).cos();
        }
        v += 0.05 * (ptdf_apps::util::uniform01(&mut state) - 0.5);
        *s = Cpx::new(v, 0.0);
    }

    let (spec, report) = run(Config::new(8, SchedKind::Df), {
        let sig = sig.clone();
        move || fft::fft(&sig, &prm)
    });
    println!(
        "transformed 2^{log2n} points with {} threads in virtual {}",
        report.total_threads,
        report.makespan()
    );

    // Find the dominant bins (first half of the spectrum).
    let mut mags: Vec<(usize, f64)> = spec[..n / 2]
        .iter()
        .enumerate()
        .map(|(k, c)| (k, c.abs()))
        .collect();
    mags.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("top spectral peaks:");
    for &(k, m) in mags.iter().take(4) {
        println!("  bin {k:>6}  |X| = {m:.1}");
    }
    for &(f, _) in &tones {
        assert!(
            mags[..4].iter().any(|&(k, _)| k == f),
            "tone at bin {f} must appear among the peaks"
        );
    }
    println!("both synthesized tones recovered ✓");
}
